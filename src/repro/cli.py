"""Command-line interface: run the paper's machinery from a shell.

Subcommands (``python -m repro <subcommand> --help`` for details):

* ``solve``     — run a distributed maximal-FM algorithm on a graph family
                  and verify the output;
* ``adversary`` — run the Section 4 unfold-and-mix construction against an
                  algorithm and print the witness ladder;
* ``refute``    — test a claim "algorithm X finishes in t rounds on
                  degree-Delta graphs";
* ``cover``     — extract the 2-approximate vertex cover from a maximal FM;
* ``order``     — print a ball of the 2d-regular PO-tree sorted by the
                  Appendix A homogeneous order;
* ``lint``      — run the model-contract static analyzer (``repro.lint``)
                  over source trees, or demo the runtime locality sanitizer;
* ``trace``     — run a workload under the ``repro.obs`` tracer and print
                  the span tree (optionally dump JSON/JSONL traces and a
                  hottest-spans profile);
* ``sweep``     — run a declarative (algorithm × Delta × chain × seed) grid
                  through the parallel experiment engine (``repro.engine``),
                  with canonical-form caching, resumable result shards, an
                  optional deterministic fault plan (``--faults``), and live
                  heartbeat telemetry (``--progress``);
* ``bench``     — run the declared scaling-experiment suite
                  (``repro.obs.bench``), append per-commit rows to the
                  ``BENCH_TRAJECTORY.jsonl`` history, gate regressions
                  against it (``--check``), or render the trend dashboard
                  (``--report``);
* ``serve``     — run one socket-backend shard server; point a sweep at it
                  (possibly on another host) with
                  ``sweep --backend socket --hosts HOST:PORT,...``;
* ``serve-api`` — run the sweep-as-a-service HTTP/JSON job server
                  (``repro.service``): queued GridSpec submissions over
                  ``POST /v1/jobs``, multi-tenant canonical-form caching,
                  per-job progress streaming and 429 backpressure
                  (``docs/service.md``);
* ``verify``    — test a claimed round count through the ``repro.api``
                  facade, optionally stacking a Section 5 chain; or, with
                  ``--store DIR``, replay a finished sweep store's rows
                  against fresh serial computation.

Subcommands share one flag vocabulary wired through
:func:`add_common_options` — ``--json`` (bare prints JSON to stdout, with a
PATH writes the file), ``--delta``, ``--chain``, ``--out``, and (for the
engine-driving subcommands ``sweep`` and ``bench``) the execution-control
group ``--workers`` / ``--backend`` / ``--hosts`` / ``--cell-timeout`` /
``--retries`` / ``--max-restarts``, validated in one place by
:class:`repro.engine.executors.ExecutionOptions`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.adversary import run_adversary
from .core.canonical_order import reduce_word, tree_sort_key
from .core.theorem import refute
from .core.witness import AlgorithmFailure
from .engine.executors import BACKENDS
from .engine.grid import ALGORITHMS
from .graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    star_graph,
)
from .matching.fm import fm_from_node_outputs
from .matching.verify import verify_distributed
from .matching.vertex_cover import is_vertex_cover, vertex_cover_quality

__all__ = ["main", "build_parser", "add_common_options"]

CHAIN_CHOICES = ("ec", "po", "oi", "id")


def add_common_options(
    parser: argparse.ArgumentParser,
    *,
    json_flag: bool = False,
    delta: Optional[int] = None,
    chain: Optional[str] = None,
    out: bool = False,
    execution: bool = False,
) -> argparse.ArgumentParser:
    """Attach the shared flag vocabulary to a subcommand parser.

    Every subcommand that wants machine-readable output, a degree bound, a
    Section 5 chain or an output directory spells them the same way:

    * ``--json [PATH]`` — bare prints JSON to stdout, with a PATH writes it;
    * ``--delta N`` — maximum degree (default per subcommand);
    * ``--chain {ec,po,oi,id}`` — how deep a simulation chain to stack;
    * ``--out DIR`` — directory for result artifacts.

    ``execution=True`` adds the execution-control group shared by the
    engine-driving subcommands (``sweep``, ``bench``): ``--workers``,
    ``--backend``, ``--hosts``, ``--cell-timeout``, ``--retries`` and
    ``--max-restarts``, validated together by
    :func:`_execution_options` /
    :class:`repro.engine.executors.ExecutionOptions`.
    """
    if json_flag:
        parser.add_argument(
            "--json",
            nargs="?",
            const=True,
            default=None,
            metavar="PATH",
            help="machine-readable output (bare: print to stdout; PATH: write file)",
        )
    if delta is not None:
        parser.add_argument(
            "--delta", type=int, default=delta, help=f"maximum degree (default {delta})"
        )
    if chain is not None:
        parser.add_argument(
            "--chain",
            choices=list(CHAIN_CHOICES),
            default=chain,
            help="simulation chain to stack in front of the base machine "
            "(ec: none; po: EC<=PO; oi: EC<=PO<=OI; id: the full "
            f"EC<=PO<=OI<=ID; default {chain})",
        )
    if out:
        parser.add_argument(
            "--out", metavar="DIR", default=None, help="directory for result artifacts"
        )
    if execution:
        group = parser.add_argument_group(
            "execution control",
            "one vocabulary for every engine-driving subcommand; validated "
            "together (workers >= 1, positive timeouts, known backend)",
        )
        group.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="shard fan-out for parallel backends (default 1: the serial "
            "inline baseline; >= 2 selects the process pool unless "
            "--backend says otherwise)",
        )
        group.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=None,
            help="sweep executor backend: inline (in-process, zero spawn), "
            "process (spawn pool), socket (shard servers over TCP; see "
            "the serve subcommand). Default: picked from --workers",
        )
        group.add_argument(
            "--hosts",
            default=None,
            metavar="HOST:PORT,...",
            help="socket backend only: external shard servers to dispatch "
            "to (default: self-hosted loopback servers)",
        )
        group.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-cell watchdog: a cell running longer is abandoned and "
            "retried (default: no timeout)",
        )
        group.add_argument(
            "--retries",
            type=int,
            default=1,
            metavar="N",
            help="extra attempts per cell after a timeout or error (default 1)",
        )
        group.add_argument(
            "--max-restarts",
            type=int,
            default=2,
            metavar="N",
            help="rounds of dead-worker recovery before giving up (default 2)",
        )
    return parser


def _execution_options(args):
    """Validate the shared execution-control flags into one typed object.

    All constraints live in :class:`repro.engine.executors.ExecutionOptions`
    so ``sweep`` and ``bench`` reject bad values identically (``--workers
    0``, negative timeouts, ``--hosts`` without ``--backend socket``, ...).
    """
    from .engine.executors import ExecutionOptions, parse_hosts

    try:
        hosts = tuple(parse_hosts(args.hosts)) if args.hosts else ()
        return ExecutionOptions(
            workers=args.workers,
            backend=args.backend,
            hosts=hosts,
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            max_restarts=args.max_restarts,
        )
    except ValueError as error:
        raise SystemExit(f"repro {args.command}: {error}") from None


def _emit_json(args, payload: str) -> None:
    """Honour the shared ``--json`` flag: stdout when bare, a file when PATH."""
    if isinstance(args.json, str):
        Path(args.json).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote JSON to {args.json}")
    else:
        print(payload)


def _make_graph(family: str, n: int, delta: int, seed: int):
    factories = {
        "path": lambda: path_graph(n),
        "cycle": lambda: cycle_graph(n),
        "star": lambda: star_graph(delta),
        "complete": lambda: complete_graph(n),
        "caterpillar": lambda: caterpillar(max(n // 3, 1), max(delta - 2, 1)),
        "random": lambda: random_bounded_degree_graph(n, delta, seed),
        "regular": lambda: random_regular_graph(n if (n * delta) % 2 == 0 else n + 1, delta, seed),
        "loopy-tree": lambda: random_loopy_tree(n, max(delta - 1, 1), seed),
    }
    if family not in factories:
        raise SystemExit(f"unknown family {family!r}; choose from {sorted(factories)}")
    return factories[family]()


def _make_algorithm(name: str):
    if name not in ALGORITHMS:
        raise SystemExit(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]()


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and ``--help`` generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Linear-in-Delta lower bounds in the LOCAL model, executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run a maximal-FM algorithm on a graph family")
    solve.add_argument("--family", default="random")
    solve.add_argument("--n", type=int, default=20)
    solve.add_argument("--delta", type=int, default=4)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--algorithm", default="greedy")

    adv = sub.add_parser("adversary", help="run the Section 4 lower-bound construction")
    adv.add_argument("--delta", type=int, default=5)
    adv.add_argument("--algorithm", default="greedy")
    adv.add_argument("--deep-verify", action="store_true")

    ref = sub.add_parser("refute", help="test a claimed round count")
    ref.add_argument("--delta", type=int, default=5)
    ref.add_argument("--algorithm", default="greedy")
    ref.add_argument("--claimed-rounds", type=int, required=True)

    cov = sub.add_parser("cover", help="2-approximate vertex cover from a maximal FM")
    cov.add_argument("--family", default="random")
    cov.add_argument("--n", type=int, default=20)
    cov.add_argument("--delta", type=int, default=4)
    cov.add_argument("--seed", type=int, default=0)
    cov.add_argument("--algorithm", default="greedy")

    order = sub.add_parser("order", help="print a T-ball in the Appendix A order")
    order.add_argument("--generators", type=int, default=2)
    order.add_argument("--radius", type=int, default=2)

    ex = sub.add_parser(
        "exhaustive",
        help="prove 1-round impossibility by enumerating all grid-valued algorithms",
    )
    ex.add_argument("--delta", type=int, default=3)
    ex.add_argument("--grid-denominator", type=int, default=6)

    lint = sub.add_parser(
        "lint",
        help="model-contract static analysis (per-line rules plus the "
        "interprocedural effect/concurrency/kernel/suppression checks)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    add_common_options(lint, json_flag=True)
    lint.add_argument(
        "--sanitize-demo",
        action="store_true",
        help="run the runtime locality sanitizer against a cheating and an "
        "honest EC algorithm instead of linting",
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        const="lint-baseline.json",
        default=None,
        metavar="PATH",
        help="ratchet mode: fail only on findings not in the committed "
        "baseline (default path: lint-baseline.json)",
    )
    lint.add_argument(
        "--update-baseline",
        nargs="?",
        const="lint-baseline.json",
        default=None,
        metavar="PATH",
        help="rewrite the baseline to the current findings and exit 0",
    )
    lint.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log (GitHub "
        "code scanning)",
    )
    lint.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's full documentation and exit",
    )
    lint.add_argument(
        "--effects",
        metavar="MODULE.FUNC",
        help="print the inferred effect report for a function (or MODULE "
        "for its module body) instead of linting",
    )

    trace = sub.add_parser(
        "trace",
        help="run a workload under the repro.obs tracer and print the span tree",
    )
    trace.add_argument(
        "target",
        choices=["demo", "adversary", "theorem"],
        help="demo: one simulator run + distributed verification; "
        "adversary: the Section 4 construction; "
        "theorem: the EC<=PO chain fed to the adversary (Section 5)",
    )
    trace.add_argument("--algorithm", default="greedy")
    add_common_options(trace, json_flag=True, delta=5, chain="po")
    trace.add_argument("--jsonl", metavar="PATH", help="write a flat JSONL span log")
    trace.add_argument(
        "--profile", action="store_true", help="also print the hottest spans"
    )
    trace.add_argument(
        "--top", type=int, default=10, help="profile rows to print (default 10)"
    )
    trace.add_argument(
        "--max-depth",
        type=int,
        default=3,
        help="span-tree print depth (the JSON export is always complete)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run an (algorithm x Delta x chain x seed) grid through the "
        "parallel experiment engine",
    )
    sweep.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (default: greedy,proposal)",
    )
    sweep.add_argument(
        "--deltas",
        default=None,
        help="Delta values, comma-separated or A..B (default: 3..8)",
    )
    sweep.add_argument(
        "--seeds", default=None, help="comma-separated seeds (default: 0)"
    )
    add_common_options(sweep, json_flag=True, chain="ec", out=True, execution=True)
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk canonical-form cache (default: $REPRO_CACHE_DIR)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the canonical-form cache"
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --out's result shards",
    )
    sweep.add_argument(
        "--smoke",
        action="store_true",
        help="run the 2-minute smoke grid (greedy+proposal, Delta in {3,4})",
    )
    sweep.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fail (exit 1) when the canonical-form cache hit rate falls "
        "below RATE (0..1) — a CI guard for the digest-keyed cache; "
        "reported as n/a (and never failed) when the cache saw no lookups",
    )
    sweep.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="replay a deterministic fault plan during the sweep "
        "(see docs/fault_injection.md for the schema)",
    )
    sweep.add_argument(
        "--progress",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="live heartbeat telemetry: a single-line status on stderr plus "
        "JSONL events written to PATH (bare: <out>/progress.jsonl when "
        "--out is set, else stderr only)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the scaling-experiment suite, persist per-commit trajectory "
        "rows, and gate performance regressions",
    )
    bench.add_argument(
        "--suite",
        default="smoke",
        help="declared suite to run (smoke, full; default smoke)",
    )
    bench.add_argument(
        "--trajectory",
        default="BENCH_TRAJECTORY.jsonl",
        metavar="PATH",
        help="append-only trajectory file (default BENCH_TRAJECTORY.jsonl)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="run the suite, compare against the committed trajectory, and "
        "exit 1 past any declared threshold (nothing is appended)",
    )
    bench.add_argument(
        "--report",
        action="store_true",
        help="render the trend dashboard from the trajectory without running",
    )
    bench.add_argument(
        "--dry-run",
        action="store_true",
        help="run the suite and print the rows without appending them",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions per measurement; the median is recorded "
        "(default 3)",
    )
    bench.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="N",
        help="untimed warmup runs per measurement (default 1)",
    )
    bench.add_argument(
        "--commit",
        default=None,
        metavar="SHA",
        help="commit id recorded on rows (default: $REPRO_BENCH_COMMIT or "
        "git rev-parse HEAD)",
    )
    bench.add_argument(
        "--last",
        type=int,
        default=8,
        metavar="N",
        help="rows per experiment in the --report dashboard (default 8)",
    )
    add_common_options(bench, json_flag=True, execution=True)

    serve = sub.add_parser(
        "serve",
        help="run one socket-backend shard server (pair with "
        "sweep --backend socket --hosts HOST:PORT,...)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; 0.0.0.0 to serve other "
        "hosts)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: an OS-assigned free port, printed "
        "on startup)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N shard requests (default: run until "
        "interrupted)",
    )

    serve_api = sub.add_parser(
        "serve-api",
        help="run the sweep-as-a-service HTTP/JSON job server "
        "(POST /v1/jobs; see docs/service.md)",
    )
    serve_api.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; 0.0.0.0 to serve other "
        "hosts)",
    )
    serve_api.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: an OS-assigned free port, printed "
        "on startup)",
    )
    serve_api.add_argument(
        "--data-dir",
        default="service-data",
        metavar="DIR",
        help="root for job artifacts (jobs/<id>/ stores, progress JSONL) "
        "and, unless --cache-dir is set, the tenant caches "
        "(default service-data)",
    )
    serve_api.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="base of the multi-tenant canonical-form cache "
        "(tenants/<name>/ + shared/; default DATA_DIR/cache)",
    )
    serve_api.add_argument(
        "--no-shared-cache",
        action="store_true",
        help="disable the read-through shared cache tier (tenants stay "
        "fully isolated, no cross-tenant dedup)",
    )
    serve_api.add_argument(
        "--disk-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget per cache tier directory; oldest-used entries "
        "are evicted past it (default: never evict)",
    )
    serve_api.add_argument(
        "--queue-size",
        type=int,
        default=16,
        metavar="N",
        help="bounded job queue depth; submissions past it get 429 + "
        "Retry-After (default 16)",
    )
    serve_api.add_argument(
        "--job-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads draining the job queue (default 1; jobs in "
        "one process serialise on the engine's ambient hooks anyway)",
    )
    serve_api.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="PER_SECOND",
        help="per-tenant submission rate limit in jobs/second "
        "(default 0: unlimited)",
    )
    serve_api.add_argument(
        "--burst",
        type=int,
        default=4,
        metavar="N",
        help="per-tenant burst allowance for --rate (default 4)",
    )
    add_common_options(serve_api, execution=True)

    ver = sub.add_parser(
        "verify",
        help="verify a claimed round count through the repro.api facade, "
        "or replay a finished sweep store against fresh computation",
    )
    ver.add_argument(
        "--algorithm",
        default=None,
        help="registered algorithm to test (default: greedy on the 'ec' "
        "chain; deeper chains always run the proposal dynamics)",
    )
    ver.add_argument(
        "--claimed-rounds",
        type=int,
        default=None,
        help="claimed round count to refute (required unless --store)",
    )
    ver.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="replay a finished sweep store: recompute every persisted row "
        "serially and fail unless they match byte-for-byte",
    )
    add_common_options(ver, json_flag=True, delta=5, chain="ec")

    return parser


def _cmd_solve(args) -> int:
    g = _make_graph(args.family, args.n, args.delta, args.seed)
    alg = _make_algorithm(args.algorithm)
    outputs = alg.run_on(g)
    fm = fm_from_node_outputs(g, outputs)
    ok, _, check_rounds = verify_distributed(g, outputs)
    print(f"graph: {args.family} (n={g.num_nodes()}, m={g.num_edges()}, Delta={g.max_degree()})")
    print(f"algorithm: {alg.name} ({alg.rounds_used(g)} rounds)")
    print(f"feasible: {fm.is_feasible()}  maximal: {fm.is_maximal()}  "
          f"total weight: {fm.total_weight()}")
    print(f"1-round distributed verifier: {'accepts' if ok else 'REJECTS'} "
          f"(rounds={check_rounds})")
    return 0 if (fm.is_feasible() and fm.is_maximal()) else 1


def _cmd_adversary(args) -> int:
    alg = _make_algorithm(args.algorithm)
    try:
        witness = run_adversary(alg, args.delta, deep_verify=args.deep_verify)
    except AlgorithmFailure as failure:
        print(f"algorithm {alg.name!r} caught as incorrect: {failure}")
        return 1
    for step in witness.steps:
        print(
            f"step {step.index} [{step.side:>4}]  |G|={step.graph_g.num_nodes():>3} "
            f"|H|={step.graph_h.num_nodes():>3}  colour {step.color!r}: "
            f"{step.weight_g} vs {step.weight_h}  "
            f"(iso={step.balls_isomorphic}, loops>={step.loop_budget})"
        )
    print(witness.conclusion())
    return 0


def _cmd_refute(args) -> int:
    alg = _make_algorithm(args.algorithm)
    result = refute(alg, args.claimed_rounds, args.delta)
    print(result.summary())
    return 0 if result.kind != "consistent" else 2


def _cmd_cover(args) -> int:
    g = _make_graph(args.family, args.n, args.delta, args.seed)
    alg = _make_algorithm(args.algorithm)
    fm = fm_from_node_outputs(g, alg.run_on(g))
    cover, ratio, lower = vertex_cover_quality(fm)
    assert is_vertex_cover(g, cover)
    print(f"graph: {args.family} (n={g.num_nodes()}, m={g.num_edges()})")
    print(f"vertex cover size: {len(cover)}  LP lower bound: {lower:.2f}  "
          f"certified ratio: {ratio:.3f} (guarantee: 2)")
    return 0


def _cmd_exhaustive(args) -> int:
    from .core.exhaustive import half_integral_grid, one_round_universe, search_view_function

    universe = one_round_universe(args.delta)
    outcome = search_view_function(
        universe, t=1, grid=half_integral_grid(args.grid_denominator)
    )
    print(
        f"universe: {len(universe)} graphs of max degree {args.delta}; "
        f"{outcome.views} distinct radius-1 views; "
        f"{outcome.candidates_total} candidate outputs"
    )
    if outcome.impossible:
        print(
            f"IMPOSSIBLE: no 1-round algorithm over the 1/{args.grid_denominator} grid "
            f"exists ({outcome.nodes_explored} search nodes explored)"
        )
        return 0
    print("a satisfying view function exists on this universe:")
    for view, weights in outcome.function.items():
        print(f"  view {view!r} -> { {c: str(w) for c, w in weights.items()} }")
    return 2


def _sanitize_demo() -> int:
    """Show the locality sanitizer catching a cheat and passing an honest run."""
    from .api import run
    from .graphs.families import path_graph
    from .local.context import NodeContext
    from .local.sanitize import LocalityViolation
    from .matching.proposal import ProposalFM

    class CheatingFM(ProposalFM):
        """Proposal dynamics, except it peeks at the node label."""

        def initial_state(self, ctx: NodeContext):
            state = super().initial_state(ctx)
            state["who_am_i"] = ctx.node  # the out-of-model read
            return state

    g = path_graph(5)
    try:
        run(CheatingFM("EC"), g, sanitize=True)
    except LocalityViolation as violation:
        print(f"cheating algorithm caught: {violation}")
        caught = True
    else:
        print("ERROR: the cheating algorithm was not caught")
        caught = False

    result = run(ProposalFM("EC"), g, sanitize=True)
    log = result.access_log
    reads = ", ".join(f"{attr}={n}" for attr, n in sorted(log.reads.items()))
    print(f"honest algorithm clean: {log.clean} (model {log.model}; reads: {reads})")
    return 0 if caught and log.clean else 1


def _cmd_lint(args) -> int:
    from .lint import (
        lint_paths,
        load_baseline,
        ratchet,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.sanitize_demo:
        return _sanitize_demo()
    if args.explain:
        return _lint_explain(args.explain)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.effects:
        return _lint_effects(args.paths, args.effects)
    findings = lint_paths(args.paths)
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(findings) + "\n", encoding="utf-8")
        print(f"wrote SARIF to {args.sarif}")
    if args.update_baseline:
        write_baseline(Path(args.update_baseline), findings)
        print(
            f"baseline updated: {args.update_baseline} now accepts "
            f"{len(findings)} finding(s)"
        )
        return 0
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(
                f"repro lint: baseline file {args.baseline} not found; create "
                f"it with: repro lint --update-baseline {args.baseline}",
                file=sys.stderr,
            )
            return 2
        try:
            accepted = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        new, fixed = ratchet(findings, accepted)
        if args.json is not None:
            _emit_json(args, render_json(new))
        else:
            print(render_text(new))
        if fixed:
            print(
                f"ratchet: {fixed} baselined finding(s) no longer occur; "
                f"tighten with: repro lint --update-baseline {args.baseline}"
            )
        return 1 if new else 0
    if args.json is not None:
        _emit_json(args, render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _lint_explain(rule: str) -> int:
    """Print one rule's full module documentation."""
    from .lint.rules import RULE_MODULES

    module = RULE_MODULES.get(rule)
    if module is None:
        print(
            f"repro lint: unknown rule {rule!r}; known rules: "
            f"{', '.join(sorted(RULE_MODULES))}",
            file=sys.stderr,
        )
        return 2
    print((module.__doc__ or "").strip())
    return 0


def _lint_effects(paths, qualname: str) -> int:
    """Print the inferred effect report for one function or module body."""
    from .lint.engine import (
        DEFAULT_CONFIG,
        ProjectUnderLint,
        _parse_module,
        _iter_py_files,
        module_name_for,
    )

    modules = []
    for file in _iter_py_files(Path(p) for p in paths):
        mod, syntax = _parse_module(
            file.read_text(encoding="utf-8"), str(file), module_name_for(file), DEFAULT_CONFIG
        )
        if mod is not None:
            modules.append(mod)
    project = ProjectUnderLint(modules=modules, config=DEFAULT_CONFIG)
    analysis = project.effects
    fx = analysis.lookup(qualname)
    if fx is None:
        print(
            f"repro lint: no function or module {qualname!r} in the linted "
            f"paths (use the dotted qualname, e.g. repro.graphs.kernel._label_bytes)",
            file=sys.stderr,
        )
        return 2
    print(f"{fx.qualname}  (module {fx.module}, line {fx.lineno})")
    print(f"  raw direct effects (pre-noqa): {', '.join(sorted(fx.raw_direct)) or '-'}")
    print(f"  direct effects:    {', '.join(sorted(fx.direct)) or '-'}")
    print(f"  visible effects:   {', '.join(sorted(fx.visible)) or '-'}")
    print(f"  contained at boundaries: {', '.join(sorted(fx.contained)) or '-'}")
    for effect in sorted(fx.visible):
        chain = analysis.path(fx.qualname, effect)
        print(f"  {effect}: {' -> '.join(chain)}")
        for src in fx.sources.get(effect, []):
            print(f"    [{src.kind}] line {src.line}: {src.detail}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import (
        Tracer,
        count_spans,
        profile_rows,
        render_profile,
        render_tree,
        use_tracer,
        write_json,
        write_jsonl,
    )

    tracer = Tracer()
    with use_tracer(tracer):
        if args.target == "demo":
            g = _make_graph("random", 20, args.delta, seed=0)
            alg = _make_algorithm(args.algorithm)
            with tracer.span("trace.demo", family="random", delta=args.delta):
                outputs = alg.run_on(g)
                ok, _, _ = verify_distributed(g, outputs)
            print(f"demo: {alg.name} on random(n=20, delta={args.delta}); verifier "
                  f"{'accepts' if ok else 'REJECTS'}")
        elif args.target == "adversary":
            alg = _make_algorithm(args.algorithm)
            try:
                witness = run_adversary(alg, args.delta, tracer=tracer)
            except AlgorithmFailure as failure:
                print(f"algorithm {alg.name!r} caught as incorrect: {failure}")
            else:
                print(witness.conclusion())
        else:  # theorem: the Section 5 chain in front of the adversary
            from .core.theorem import chain_from_name

            ec = chain_from_name(args.chain, t=args.delta)
            result = refute(ec, claimed_rounds=1, delta=args.delta, tracer=tracer)
            print(result.summary())

    steps = count_spans(tracer, "adversary.step")
    total = sum(1 for _ in tracer.iter_spans())
    print(f"\ntrace: {total} spans ({steps} adversary steps)")
    print(render_tree(tracer, max_depth=args.max_depth))
    if args.profile:
        print("\nhottest spans (by self time):")
        print(render_profile(profile_rows(tracer), top=args.top))
    if isinstance(args.json, str):
        path = write_json(tracer, args.json, command=f"trace {args.target}")
        print(f"\nwrote JSON trace to {path}")
    elif args.json:
        import json as json_

        from .obs import trace_document

        print(json_.dumps(trace_document(tracer, command=f"trace {args.target}")))
    if args.jsonl:
        path = write_jsonl(tracer, args.jsonl)
        print(f"wrote JSONL span log to {path}")
    return 0


def _parse_ints(spec: str, flag: str) -> tuple:
    """Parse a shared integer-list spec: ``"3,4,5"`` or a range ``"3..8"``."""
    spec = spec.strip()
    if ".." in spec:
        lo, _, hi = spec.partition("..")
        try:
            return tuple(range(int(lo), int(hi) + 1))
        except ValueError:
            raise SystemExit(f"{flag}: bad range {spec!r} (want A..B)") from None
    try:
        return tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise SystemExit(f"{flag}: bad value {spec!r} (want N,N,... or A..B)") from None


def _cmd_serve(args) -> int:
    """Run one socket-backend shard server until interrupted."""
    from .engine.executors import ShardServer

    server = ShardServer(host=args.host, port=args.port)
    host, port = server.address
    print(f"shard server listening on {host}:{port}", flush=True)
    print(
        f"dispatch to it with: repro sweep --backend socket --hosts {host}:{port}",
        flush=True,
    )
    try:
        server.serve_forever(max_requests=args.max_requests)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(f"shard server stopped after {server.requests_served} request(s)")
    return 0


def _cmd_serve_api(args) -> int:
    """Run the sweep-as-a-service HTTP job server until interrupted."""
    from .service import ServiceConfig, ServiceServer, SweepService

    options = _execution_options(args)
    config = ServiceConfig(
        data_dir=Path(args.data_dir),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        shared_cache=not args.no_shared_cache,
        disk_budget=args.disk_budget,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        rate=args.rate,
        burst=args.burst,
        sweep_options=options.engine_kwargs(),
    )
    try:
        server = ServiceServer(SweepService(config), host=args.host, port=args.port)
    except ValueError as error:
        raise SystemExit(f"repro serve-api: {error}") from None
    host, port = server.address
    print(f"sweep service listening on http://{host}:{port}/v1/", flush=True)
    print(
        f"submit with: curl -X POST http://{host}:{port}/v1/jobs "
        "-H 'X-Repro-Tenant: NAME' -d '{\"grid\": {\"deltas\": [3, 4]}}'",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("sweep service stopped")
    return 0


def _cmd_sweep(args) -> int:
    import json as json_

    from .api import sweep as api_sweep
    from .engine import GridSpec, e1_grid, smoke_grid

    if args.smoke:
        grid = smoke_grid()
    elif args.algorithms is None and args.deltas is None and args.seeds is None and args.chain == "ec":
        grid = e1_grid()
    else:
        base = e1_grid()
        grid = GridSpec(
            algorithms=tuple(args.algorithms.split(",")) if args.algorithms else base.algorithms,
            deltas=_parse_ints(args.deltas, "--deltas") if args.deltas else base.deltas,
            chains=(args.chain,),
            seeds=_parse_ints(args.seeds, "--seeds") if args.seeds else base.seeds,
        )
    from .engine import CellExecutionError

    options = _execution_options(args)
    progress = None
    progress_path = None
    if args.progress is not None:
        from .obs.progress import ProgressEmitter

        if isinstance(args.progress, str):
            progress_path = Path(args.progress)
        elif args.out:
            progress_path = Path(args.out) / "progress.jsonl"
        progress = ProgressEmitter(path=progress_path, stream=sys.stderr)

    try:
        result = api_sweep(
            grid,
            out=args.out,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            resume=args.resume,
            faults=args.faults,
            progress=progress,
            **options.engine_kwargs(),
        )
    except ValueError as error:
        raise SystemExit(f"repro sweep: {error}") from None
    except CellExecutionError as error:
        # the failing cell is named here and recorded in summary.json's
        # "failed" list when --out was given
        print(f"repro sweep: {error}", file=sys.stderr)
        return 1
    print(result.summary)
    if args.out:
        print(f"results under {args.out} (summary.json, trace.json, shard-*.jsonl)")
    if progress_path is not None:
        print(f"progress events: {progress_path} ({progress.events} event(s))")
    # the gate verdict is computed before the JSON payload is emitted so
    # --json consumers always see a machine-readable account — including
    # the 0-lookup case, where "hit_rate": null states explicitly that the
    # floor was not applied (it used to be text-only with exit 0)
    gate = None
    if args.min_hit_rate is not None:
        if result.cache.lookups == 0:
            gate = {
                "min_hit_rate": args.min_hit_rate,
                "hit_rate": None,
                "applied": False,
                "passed": None,
            }
        else:
            gate = {
                "min_hit_rate": args.min_hit_rate,
                "hit_rate": result.cache.hit_rate,
                "applied": True,
                "passed": result.cache.hit_rate >= args.min_hit_rate,
            }
    if args.json is not None:
        payload = {
            "grid": grid.as_dict(),
            "workers": result.workers,
            "backend": result.backend,
            "resumed": result.resumed,
            "cache": result.cache.as_dict(),
            "recovery": result.recovery,
            "rows": list(result.rows),
        }
        if gate is not None:
            payload["hit_rate_gate"] = gate
        _emit_json(args, json_.dumps(payload, sort_keys=True))
    refuted = sum(1 for row in result.rows if row["status"] == "refuted")
    if gate is not None:
        # interned-plan reuse is reported alongside the rate but never
        # gated: a plan hit is a cheap compute under a miss, not a lookup
        if result.cache.misses:
            print(
                f"interned-plan reuse: {result.cache.plan_hits}/{result.cache.misses} "
                f"miss(es) answered by a cached shape plan"
            )
        else:
            print("interned-plan reuse: n/a (0 canonicalisation misses)")
        if not gate["applied"]:
            # no lookups (e.g. --no-cache, or a grid whose cells never
            # canonicalise): a rate floor is meaningless, not a failure
            print(
                f"canonical-cache hit rate n/a (0 lookups; "
                f"--min-hit-rate {args.min_hit_rate:.3f} not applied)"
            )
        elif not gate["passed"]:
            print(
                f"canonical-cache hit rate {result.cache.hit_rate:.3f} below required "
                f"{args.min_hit_rate:.3f} "
                f"({result.cache.hits}/{result.cache.lookups} lookups)"
            )
            return 1
        else:
            print(
                f"canonical-cache hit rate {result.cache.hit_rate:.3f} "
                f"(>= {args.min_hit_rate:.3f} required)"
            )
    return 0 if refuted == 0 else 1


def _cmd_bench(args) -> int:
    import json as json_

    from .api import bench as api_bench
    from .obs import bench

    if args.report:
        trajectory_rows = bench.read_rows(args.trajectory)
        if args.json is not None:
            _emit_json(args, json_.dumps(trajectory_rows, sort_keys=True, default=str))
        else:
            print(bench.render_trajectory(trajectory_rows, last=args.last))
        return 0

    options = _execution_options(args)
    try:
        suite = bench.suite_named(args.suite)
    except ValueError as error:
        raise SystemExit(f"repro bench: {error}") from None
    report = api_bench(
        suite,
        repeats=args.repeats,
        warmup=args.warmup,
        commit=args.commit,
        workers=options.workers,
        backend=options.backend,
        hosts=list(options.hosts) or None,
        cell_timeout=options.cell_timeout,
        retries=options.retries,
        max_restarts=options.max_restarts,
    )
    rows = list(report.rows)

    if args.check:
        trajectory_rows = bench.read_rows(args.trajectory)
        if not trajectory_rows:
            print(
                f"repro bench: trajectory {args.trajectory} is empty or missing; "
                f"record a baseline first with: repro bench --suite {args.suite}",
                file=sys.stderr,
            )
            return 2
        report = bench.check_rows(rows, trajectory_rows, suite)
        if args.json is not None:
            _emit_json(
                args,
                json_.dumps(
                    {"rows": rows, "check": report.as_dict()},
                    sort_keys=True,
                    default=str,
                ),
            )
        else:
            print(bench.render_check(report, rows, trajectory_rows))
        return 0 if report.ok else 1

    if args.json is not None:
        _emit_json(args, json_.dumps(rows, sort_keys=True, default=str))
    else:
        print(bench.render_rows(rows))
    if args.dry_run:
        print(f"dry run: {len(rows)} row(s) not appended to {args.trajectory}")
    else:
        bench.append_rows(args.trajectory, rows)
        print(f"appended {len(rows)} row(s) to {args.trajectory}")
    return 0


def _cmd_verify_store(args) -> int:
    """Replay a finished sweep store against fresh serial computation."""
    import json as json_

    from .engine import verify_store

    directory = Path(args.store)
    if not directory.is_dir():
        raise SystemExit(f"repro verify: no such store directory: {args.store}")
    report = verify_store(directory)
    ok = not report["mismatched"] and report["summary_consistent"]
    print(
        f"store {args.store}: {report['matched']}/{report['cells']} rows match "
        f"fresh serial computation; summary "
        f"{'consistent' if report['summary_consistent'] else 'INCONSISTENT'}"
    )
    for miss in report["mismatched"]:
        print(f"  MISMATCH {miss['key']}: stored row differs from recomputation")
    scan = report.get("scan", {})
    if any(scan.values()):
        print(
            f"  shard damage absorbed: {scan.get('torn_final', 0)} torn final line(s), "
            f"{scan.get('corrupt_lines', 0)} corrupt line(s), "
            f"{scan.get('duplicates', 0)} duplicate row(s)"
        )
    if args.json is not None:
        _emit_json(args, json_.dumps(report, sort_keys=True, default=str))
    return 0 if ok else 1


def _cmd_verify(args) -> int:
    import json as json_

    from .api import refute as api_refute

    if args.store is not None:
        if args.claimed_rounds is not None:
            raise SystemExit("repro verify: --store and --claimed-rounds are mutually exclusive")
        return _cmd_verify_store(args)
    if args.claimed_rounds is None:
        raise SystemExit("repro verify: one of --claimed-rounds or --store is required")
    if args.chain == "ec":
        result = api_refute(
            _make_algorithm(args.algorithm or "greedy"),
            args.delta,
            claimed_rounds=args.claimed_rounds,
        )
    else:
        if args.algorithm not in (None, "proposal"):
            raise SystemExit(
                f"repro verify: chain {args.chain!r} runs the proposal dynamics "
                f"(the one machine with PO/ID presentations); drop --algorithm "
                f"or pass --algorithm proposal"
            )
        result = api_refute(
            None, args.delta, claimed_rounds=args.claimed_rounds, chain=args.chain
        )
    print(result.summary())
    if args.json is not None:
        payload = {
            "algorithm": result.algorithm,
            "chain": args.chain,
            "claimed_rounds": result.claimed_rounds,
            "delta": result.delta,
            "kind": result.kind,
            "summary": result.summary(),
        }
        _emit_json(args, json_.dumps(payload, sort_keys=True))
    return 0 if result.kind != "consistent" else 2


def _cmd_order(args) -> int:
    steps = [(c, s) for c in range(1, args.generators + 1) for s in (+1, -1)]
    words = {()}
    frontier = {()}
    for _ in range(args.radius):
        nxt = set()
        for w in frontier:
            for step in steps:
                r = reduce_word(w + (step,))
                if len(r) == len(w) + 1:
                    nxt.add(r)
        words |= nxt
        frontier = nxt

    def pretty(word):
        if not word:
            return "e"
        return ".".join(f"g{c}" if s > 0 else f"g{c}~" for (c, s) in word)

    for i, w in enumerate(sorted(words, key=tree_sort_key)):
        print(f"{i:>4}: {pretty(w)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "adversary": _cmd_adversary,
        "refute": _cmd_refute,
        "cover": _cmd_cover,
        "order": _cmd_order,
        "exhaustive": _cmd_exhaustive,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "serve-api": _cmd_serve_api,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
