"""Tests for the sweep-as-a-service job API (repro.service)."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import api
from repro.engine import GridSpec, smoke_grid
from repro.obs.progress import read_progress_events
from repro.service import (
    Backpressure,
    ServiceConfig,
    ServiceServer,
    SweepService,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def tiny_grid() -> dict:
    return {"algorithms": ["greedy"], "deltas": [3]}


def make_service(tmp_path, **overrides) -> SweepService:
    defaults = dict(data_dir=tmp_path / "data", progress_interval=0.0)
    defaults.update(overrides)
    return SweepService(ServiceConfig(**defaults))


def wait_for(predicate, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("condition not reached in time")


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(1.0)
        clock.now += 0.25
        assert bucket.acquire() == pytest.approx(0.75)
        clock.now += 1.0
        assert bucket.acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=1, clock=clock)
        clock.now += 1000.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestSubmission:
    def test_submit_validates_grid_and_tenant(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ValueError):
            service.submit({"algorithms": ["no-such-algorithm"]})
        with pytest.raises(ValueError):
            service.submit(tiny_grid(), tenant="../escape")

    def test_submit_counts_cells_and_assigns_ids(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(smoke_grid(), tenant="alice")
        assert job.id == "job-000001"
        assert job.state == "queued" and job.cells == 4
        second = service.submit(tiny_grid())
        assert second.id == "job-000002"
        assert second.tenant == "public"  # the default tenant
        assert [j.id for j in service.jobs(tenant="alice")] == [job.id]

    def test_queue_full_raises_backpressure(self, tmp_path):
        service = make_service(tmp_path, queue_size=1)  # workers never started
        service.submit(tiny_grid())
        with pytest.raises(Backpressure) as info:
            service.submit(tiny_grid())
        assert info.value.retry_after > 0

    def test_rate_limit_raises_backpressure_per_tenant(self, tmp_path):
        service = make_service(tmp_path, rate=0.001, burst=1, queue_size=100)
        service.submit(tiny_grid(), tenant="alice")
        with pytest.raises(Backpressure) as info:
            service.submit(tiny_grid(), tenant="alice")
        assert info.value.retry_after > 0
        # an independent tenant still has its own burst
        service.submit(tiny_grid(), tenant="bob")


class TestJobLifecycle:
    def test_job_runs_to_done_with_progress_and_rows(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(tiny_grid(), tenant="alice")
        service.start()
        try:
            wait_for(lambda: job.state in ("done", "failed"))
        finally:
            service.stop()
        assert job.state == "done", job.error
        assert job.rows == job.cells == 1
        assert job.cache is not None and "disk_evictions" in job.cache
        rows = service.rows(job.id)
        serial = api.sweep(GridSpec.from_mapping(tiny_grid()))
        assert json.dumps(rows, sort_keys=True) == json.dumps(
            [dict(r) for r in serial.rows], sort_keys=True
        )
        progress = service.progress(job.id)
        kinds = [event["event"] for event in progress["events"]]
        assert kinds[0] == "start" and kinds[-1] == "final"
        # incremental tailing from an offset
        tail = service.progress(job.id, offset=progress["offset"])
        assert tail["events"] == []

    def test_failed_job_records_error(self, tmp_path):
        service = make_service(tmp_path)
        faults = {
            "format": "repro-fault-plan-v1",
            "faults": [
                {"kind": "raise-worker", "cell": "*", "attempt": None, "times": 10_000}
            ],
        }
        job = service.submit(tiny_grid(), faults=faults)
        service.start()
        try:
            wait_for(lambda: job.state in ("done", "failed"))
        finally:
            service.stop()
        assert job.state == "failed"
        assert "CellExecutionError" in job.error
        assert service.rows(job.id) is None

    def test_cancel_queued_job_never_runs(self, tmp_path):
        service = make_service(tmp_path)  # not started: stays queued
        job = service.submit(tiny_grid())
        assert service.cancel(job.id) is True
        assert job.state == "cancelled"
        service.start()
        service.stop()
        assert job.state == "cancelled"
        assert not (job.directory / "progress.jsonl").exists()
        # cancelling again is a settled no-op
        assert service.cancel(job.id) is False

    def test_cancel_mid_stream_flushes_aborted_exactly_once(self, tmp_path):
        # deterministic mid-stream cancel: the flag is set before the
        # worker picks the job up, so the sweep opens its event log, emits
        # `start`, and aborts at the first cancellation checkpoint — the
        # emitter must flush exactly one `aborted` event on the way out
        service = make_service(tmp_path)
        job = service.submit(smoke_grid(), tenant="alice")
        job.cancel.set()
        service.start()
        try:
            wait_for(lambda: job.state != "queued" and job.state != "running")
        finally:
            service.stop()
        assert job.state == "cancelled"
        events = read_progress_events(job.directory / "progress.jsonl")
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds.count("aborted") == 1
        assert kinds[-1] == "aborted"
        assert "final" not in kinds


class TestHTTPService:
    @pytest.fixture()
    def server(self, tmp_path):
        service = make_service(tmp_path)
        server = ServiceServer(service)
        server.start()
        yield server
        server.stop()

    @staticmethod
    def request(server, method, path, body=None, headers=None):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=headers or {},
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def test_two_concurrent_tenants_byte_identical_with_shared_hits(self, server):
        # the acceptance scenario: the same smoke grid submitted by two
        # tenants concurrently over HTTP; both must reproduce the serial
        # CLI sweep byte-for-byte, and the later tenant's sweep must have
        # deduped canonicalisation through the shared cache tier
        grid = smoke_grid().as_dict()
        submitted = {}

        def submit(tenant):
            status, _, payload = self.request(
                server,
                "POST",
                "/v1/jobs",
                {"grid": grid},
                headers={"X-Repro-Tenant": tenant},
            )
            assert status == 202, payload
            submitted[tenant] = payload["id"]

        threads = [
            threading.Thread(target=submit, args=(tenant,))
            for tenant in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(submitted) == {"alice", "bob"}

        def both_done():
            states = [
                self.request(server, "GET", f"/v1/jobs/{job_id}")[2]["state"]
                for job_id in submitted.values()
            ]
            assert "failed" not in states
            return all(state == "done" for state in states)

        wait_for(both_done)

        serial = api.sweep(smoke_grid())
        baseline = json.dumps([dict(r) for r in serial.rows], sort_keys=True)
        jobs = {}
        for tenant, job_id in submitted.items():
            status, _, rows_payload = self.request(
                server, "GET", f"/v1/jobs/{job_id}/rows"
            )
            assert status == 200
            assert json.dumps(rows_payload["rows"], sort_keys=True) == baseline
            jobs[tenant] = self.request(server, "GET", f"/v1/jobs/{job_id}")[2]

        # one worker thread drains the queue in order, so whichever job ran
        # second was fully served by the first job's shared-tier writes
        second = jobs[max(submitted, key=lambda t: submitted[t])]
        assert second["cache"]["shared_hits"] > 0
        assert second["cache"]["hits"] >= second["cache"]["shared_hits"]

        # progress is streamable per job
        for job_id in submitted.values():
            _, _, progress = self.request(
                server, "GET", f"/v1/jobs/{job_id}/progress"
            )
            kinds = [event["event"] for event in progress["events"]]
            assert kinds[0] == "start" and kinds[-1] == "final"

    def test_health_stats_and_job_listing(self, server):
        status, _, health = self.request(server, "GET", "/v1/healthz")
        assert status == 200 and health["ok"] is True
        status, _, payload = self.request(
            server, "POST", "/v1/jobs", {"grid": tiny_grid(), "tenant": "alice"}
        )
        assert status == 202
        status, _, listing = self.request(server, "GET", "/v1/jobs?tenant=alice")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [payload["id"]]
        assert self.request(server, "GET", "/v1/jobs?tenant=nobody")[2]["jobs"] == []

    def test_error_paths(self, server):
        assert self.request(server, "GET", "/v1/jobs/job-999999")[0] == 404
        assert self.request(server, "GET", "/v1/nothing")[0] == 404
        assert self.request(server, "DELETE", "/v1/jobs/job-999999")[0] == 404
        status, _, payload = self.request(
            server, "POST", "/v1/jobs", {"grid": {"algorithms": ["bogus"]}}
        )
        assert status == 400 and "invalid submission" in payload["error"]
        status, _, payload = self.request(
            server, "POST", "/v1/jobs", {"grid": tiny_grid(), "tenant": "../escape"}
        )
        assert status == 400

    def test_rows_conflict_until_done(self, tmp_path):
        service = make_service(tmp_path)  # workers never started: job stays queued
        server = ServiceServer(service)
        server._httpd.timeout = 5
        thread = threading.Thread(target=server._httpd.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, payload = self.request(
                server, "POST", "/v1/jobs", {"grid": tiny_grid()}
            )
            assert status == 202
            status, _, conflict = self.request(
                server, "GET", f"/v1/jobs/{payload['id']}/rows"
            )
            assert status == 409
            assert conflict["state"] == "queued"
            # DELETE cancels the queued job
            status, _, _ = self.request(
                server, "DELETE", f"/v1/jobs/{payload['id']}"
            )
            assert status == 202
            status, _, again = self.request(
                server, "DELETE", f"/v1/jobs/{payload['id']}"
            )
            assert status == 409 and again["state"] == "cancelled"
        finally:
            server._httpd.shutdown()
            server._httpd.server_close()
            thread.join(timeout=5)

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        service = make_service(tmp_path, queue_size=1)  # workers never started
        server = ServiceServer(service)
        thread = threading.Thread(target=server._httpd.serve_forever, daemon=True)
        thread.start()
        try:
            assert self.request(server, "POST", "/v1/jobs", {"grid": tiny_grid()})[0] == 202
            status, headers, payload = self.request(
                server, "POST", "/v1/jobs", {"grid": tiny_grid()}
            )
            assert status == 429
            assert "queue full" in payload["error"]
            assert payload["retry_after"] > 0
            assert int(headers["Retry-After"]) >= 1
        finally:
            server._httpd.shutdown()
            server._httpd.server_close()
            thread.join(timeout=5)
