"""Tests for the homogeneous tree order (repro.core.canonical_order, Appendix A)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.canonical_order import (
    bracket,
    compare_words,
    concat,
    inverse_word,
    reduce_word,
    slot_key,
    tree_sort_key,
)


def ball(d: int, radius: int):
    """All reduced words of length <= radius over d colours."""
    steps = [(c, s) for c in range(1, d + 1) for s in (+1, -1)]
    words = {()}
    frontier = {()}
    for _ in range(radius):
        nxt = set()
        for w in frontier:
            for step in steps:
                r = reduce_word(w + (step,))
                if len(r) == len(w) + 1:
                    nxt.add(r)
        words |= nxt
        frontier = nxt
    return sorted(words)


class TestWords:
    def test_reduce_cancels_inverses(self):
        assert reduce_word([(1, 1), (1, -1)]) == ()
        assert reduce_word([(1, 1), (2, 1), (2, -1), (1, -1)]) == ()
        assert reduce_word([(1, 1), (1, 1)]) == ((1, 1), (1, 1))

    def test_reduce_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            reduce_word([(1, 0)])

    def test_inverse(self):
        w = ((1, 1), (2, -1))
        assert inverse_word(w) == ((2, 1), (1, -1))
        assert concat(w, inverse_word(w)) == ()

    def test_concat_is_group_multiplication(self):
        a = ((1, 1),)
        b = ((1, -1), (2, 1))
        assert concat(a, b) == ((2, 1),)


class TestBracket:
    def test_identity_is_zero(self):
        assert bracket(()) == 0

    def test_single_steps(self):
        assert bracket(((1, 1),)) == 1
        assert bracket(((1, -1),)) == -1

    def test_brackets_are_odd(self):
        """Totality: the bracket of any non-trivial reduced word is odd."""
        for w in ball(2, 3):
            if w:
                assert bracket(w) % 2 == 1 or bracket(w) % 2 == -1
                assert bracket(w) != 0

    def test_antisymmetry(self):
        for w in ball(2, 3):
            assert bracket(w) == -bracket(inverse_word(w))

    def test_requires_reduced(self):
        with pytest.raises(ValueError):
            bracket([(1, 1), (1, -1)])

    def test_figure10_style_decomposition(self):
        """[[x ~> z]] decomposes along intermediate nodes as in the paper's
        transitivity proof: value(x~>z) = value(x~>v) + bracket at v +
        value(v~>z) when v lies on the path."""
        x = ()
        v = ((1, 1),)
        z = ((1, 1), (2, 1))
        whole = bracket(z)
        first = bracket(v)
        second = bracket(concat(inverse_word(v), z))
        # the missing piece is the interior-node comparison at v
        entering = (1, -1)
        leaving = (2, 1)
        interior = 1 if slot_key(entering) < slot_key(leaving) else -1
        assert whole == first + interior + second


class TestLinearOrder:
    def test_equal_words(self):
        assert compare_words(((1, 1),), ((1, 1),)) == 0

    def test_antisymmetric_total(self):
        words = ball(2, 2)
        for x, y in combinations(words, 2):
            assert compare_words(x, y) == -compare_words(y, x)
            assert compare_words(x, y) != 0

    def test_transitive_exhaustive(self):
        words = ball(2, 2)
        for x, y, z in combinations(words, 3):
            signs = (compare_words(x, y), compare_words(y, z), compare_words(x, z))
            if signs[0] == signs[1] == -1:
                assert signs[2] == -1
            if signs[0] == signs[1] == 1:
                assert signs[2] == 1

    def test_sortable(self):
        words = ball(2, 2)
        ordered = sorted(words, key=tree_sort_key)
        for a, b in zip(ordered, ordered[1:]):
            assert compare_words(a, b) == -1


class TestHomogeneity:
    """Lemma 4: the order is invariant under the free group's left action,
    so all ordered neighbourhoods of T are pairwise isomorphic."""

    def test_left_invariance_random(self):
        rng = random.Random(42)
        words = ball(2, 3)
        for _ in range(500):
            x, y = rng.sample(words, 2)
            g = rng.choice(words)
            assert compare_words(x, y) == compare_words(concat(g, x), concat(g, y))

    def test_left_invariance_three_colors(self):
        rng = random.Random(7)
        words = ball(3, 2)
        for _ in range(200):
            x, y = rng.sample(words, 2)
            g = rng.choice(words)
            assert compare_words(x, y) == compare_words(concat(g, x), concat(g, y))

    def test_ordered_neighbourhoods_isomorphic(self):
        """The order type of the radius-1 ball around any node matches the
        order type around the identity (the concrete form of Lemma 4)."""
        d = 2
        steps = [(c, s) for c in range(1, d + 1) for s in (+1, -1)]
        base_ball = [()] + [reduce_word((s,)) for s in steps]
        base_sorted = sorted(base_ball, key=tree_sort_key)
        base_pattern = [base_sorted.index(w) for w in base_ball]
        for g in ball(2, 2):
            shifted = [concat(g, w) for w in base_ball]
            shifted_sorted = sorted(shifted, key=tree_sort_key)
            pattern = [shifted_sorted.index(w) for w in shifted]
            assert pattern == base_pattern
