"""Tests for the PO <= OI simulation (repro.core.sim_po_oi, Section 5.3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.canonical_order import compare_words
from repro.core.sim_po_oi import (
    OIAlgorithm,
    POFromOI,
    SymmetricOIAdapter,
    cover_words,
    po_algorithm_from_oi,
)
from repro.graphs.cover import universal_cover_po
from repro.graphs.families import cycle_graph, random_regular_graph, single_node_with_loops
from repro.graphs.ports import po_double_from_ec
from repro.matching.fm import fm_from_node_outputs, po_node_load
from repro.matching.proposal import ProposalFM
from repro.core.sim_ec_po import ECFromPO


class TestCoverWords:
    def test_words_are_reduced(self):
        d = po_double_from_ec(single_node_with_loops(2))
        cover = universal_cover_po(d, 0, 3)
        for label, word in cover_words(d, cover).items():
            for (c1, d1), (c2, d2) in zip(word, word[1:]):
                assert not (c1 == c2 and d1 == -d2)

    def test_words_injective(self):
        d = po_double_from_ec(cycle_graph(4))
        cover = universal_cover_po(d, 0, 3)
        words = cover_words(d, cover)
        assert len(set(words.values())) == len(words)

    def test_root_is_identity(self):
        d = po_double_from_ec(cycle_graph(4))
        cover = universal_cover_po(d, 0, 2)
        assert cover_words(d, cover)[cover.root] == ()


class TestOrderedEvaluation:
    def test_ordered_nodes_strictly_increase(self):
        class SpyOI(OIAlgorithm):
            t = 2
            name = "spy"

            def __init__(self):
                self.seen = []

            def evaluate(self, tree, root, ordered_nodes):
                self.seen.append((tree, ordered_nodes))
                return {
                    ("out" if kind == "out" else "in", c): Fraction(0)
                    for (kind, c) in _root_slots(tree, root)
                }

        spy = SpyOI()
        d = po_double_from_ec(cycle_graph(4))
        POFromOI(spy).run_on(d)
        assert len(spy.seen) == 4
        for tree, ordered in spy.seen:
            words = cover_words(d, universal_cover_po(d, 0, 0))  # unused; order checked via tree structure
            assert len(ordered) == tree.num_nodes()

    def test_symmetric_adapter_produces_maximal_fm(self):
        """The full PO <= OI pipeline with an order-oblivious machine."""
        oi = SymmetricOIAdapter(ProposalFM("PO"), t=3)
        po_alg = po_algorithm_from_oi(oi)
        for g in (cycle_graph(6), random_regular_graph(8, 3, seed=1)):
            d = po_double_from_ec(g)
            out = po_alg.run_on(d)
            for v in d.nodes():
                weights = {}
                for slot, w in out[v].items():
                    kind, c = slot
                    arc = d.out_edge(v, c) if kind == "out" else d.in_edge(v, c)
                    weights[arc.eid] = w
                assert po_node_load(d, weights, v) <= 1

    def test_end_to_end_through_ec(self):
        """EC <= PO <= OI on regular inputs yields verified maximal FMs."""
        oi = SymmetricOIAdapter(ProposalFM("PO"), t=3)
        ec = ECFromPO(po_algorithm_from_oi(oi))
        g = cycle_graph(8)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_feasible() and fm.is_maximal()

    def test_loopy_base_graph(self):
        oi = SymmetricOIAdapter(ProposalFM("PO"), t=2)
        ec = ECFromPO(po_algorithm_from_oi(oi))
        g = single_node_with_loops(3)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_fully_saturated()


class TestRunTimePreservation:
    def test_reported_rounds_equal_t(self):
        oi = SymmetricOIAdapter(ProposalFM("PO"), t=3)
        po_alg = POFromOI(oi)
        d = po_double_from_ec(cycle_graph(4))
        po_alg.run_on(d)
        assert po_alg.rounds_used(d) == 3

    def test_t_zero_rejected_for_state_machines(self):
        with pytest.raises(ValueError):
            SymmetricOIAdapter(ProposalFM("PO"), t=0)


def _root_slots(tree, root):
    slots = []
    for e in tree.out_edges(root):
        slots.append(("out", e.color))
    for e in tree.in_edges(root):
        slots.append(("in", e.color))
    return slots


class TestChainWithDoubling:
    def test_doubling_through_oi_chain(self):
        """A second, independent algorithm through PO <= OI: the doubling
        dynamics (needs the delta global) produces feasible outputs whose
        every edge has a half-loaded endpoint."""
        from fractions import Fraction
        from repro.matching.kuhn_approx import DoublingFM
        from repro.matching.fm import fm_from_node_outputs

        oi = SymmetricOIAdapter(
            DoublingFM("PO"),
            t=3,
            globals_factory=lambda tree: {"delta": max(tree.max_degree(), 1)},
        )
        ec = ECFromPO(po_algorithm_from_oi(oi))
        g = cycle_graph(6)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_feasible()
        half = Fraction(1, 2)
        for e in g.edges():
            assert fm.node_load(e.u) >= half or fm.node_load(e.v) >= half
