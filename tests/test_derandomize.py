"""Tests for derandomisation (repro.core.derandomize, Appendix B)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.derandomize import (
    all_graphs_on,
    failure_amplification,
    find_good_assignment,
)


def priority_matching_correct(g: "nx.Graph", rho) -> bool:
    """A toy randomised local algorithm, derandomised by ``rho``: greedy
    matching by per-node random priorities; *correct* iff adjacent nodes
    never drew equal priorities (ties deadlock the symmetric tie-break).
    """
    return all(rho[u] != rho[v] for u, v in g.edges())


class TestAllGraphs:
    def test_count(self):
        assert len(all_graphs_on([1, 2, 3])) == 8  # 2^(3 choose 2)

    def test_vertex_sets(self):
        for g in all_graphs_on([4, 7]):
            assert set(g.nodes()) == {4, 7}

    def test_connected_filter(self):
        graphs = all_graphs_on([1, 2, 3], connected_only=True)
        assert all(nx.is_connected(g) for g in graphs)
        assert len(graphs) == 4  # three paths + the triangle


class TestLemma10Search:
    def test_finds_good_assignment(self):
        """With 30-bit strings, collisions are rare: the first identifier
        set admits a good assignment — Lemma 10's conclusion."""
        rng = random.Random(1)
        found = find_good_assignment(
            priority_matching_correct,
            id_sets=[range(4), range(10, 14)],
            rng=rng,
        )
        assert found is not None
        ids, rho = found
        for g in all_graphs_on(ids):
            assert priority_matching_correct(g, rho)

    def test_impossible_oracle_returns_none(self):
        rng = random.Random(2)
        found = find_good_assignment(
            lambda g, rho: False,
            id_sets=[range(3)],
            rng=rng,
            attempts_per_set=3,
        )
        assert found is None

    def test_tiny_randomness_needs_more_attempts(self):
        """With 1-bit strings, two adjacent nodes collide half the time;
        the search still succeeds on an edgeless... rather, it demonstrates
        that more attempts help."""
        rng = random.Random(3)
        found = find_good_assignment(
            priority_matching_correct,
            id_sets=[range(2)],
            rng=rng,
            rho_bits=1,
            attempts_per_set=64,
        )
        assert found is not None  # a single edge: need rho[0] != rho[1]


class TestAmplification:
    def test_failure_grows_with_components(self):
        """1 - (1-p)^q: more identifier-disjoint bad components => higher
        failure probability, the averaging engine of Lemma 10's proof."""
        bad = nx.path_graph(2)  # fails when the two priorities collide

        def correct(g, rho):
            values = list(rho.values())
            return len(set(values)) == len(values)

        rng = random.Random(4)
        # use 2-bit strings: collision probability 1/4 per component
        def correct_2bit(g, rho):
            small = {v: r % 4 for v, r in rho.items()}
            us, vs = zip(*g.edges())
            return all(small[u] != small[v] for u, v in g.edges())

        p1 = failure_amplification(correct_2bit, bad, rng, components=1, samples=400)
        p4 = failure_amplification(correct_2bit, bad, rng, components=6, samples=400)
        assert p4 > p1

    def test_zero_failure_for_correct_algorithm(self):
        bad = nx.path_graph(2)
        rng = random.Random(5)
        rate = failure_amplification(lambda g, rho: True, bad, rng, components=5, samples=50)
        assert rate == 0.0
