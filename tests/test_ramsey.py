"""Tests for the finite Ramsey machinery (repro.core.ramsey)."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.ramsey import (
    find_monochromatic_subset,
    order_invariant_subset,
    ramsey_pairs,
)


class TestExhaustiveSearch:
    def test_constant_coloring(self):
        found = find_monochromatic_subset(range(10), 2, lambda s: 0, target=5)
        assert found is not None
        subset, color = found
        assert len(subset) == 5 and color == 0

    def test_parity_coloring_pairs(self):
        """Colour a pair by the parity pattern: the even numbers form a
        monochromatic set."""
        color = lambda s: (s[0] % 2, s[1] % 2)
        found = find_monochromatic_subset(range(12), 2, color, target=4)
        assert found is not None
        subset, _ = found
        parities = {x % 2 for x in subset}
        assert len(parities) == 1

    def test_result_really_monochromatic(self):
        color = lambda s: sum(s) % 3
        found = find_monochromatic_subset(range(14), 2, color, target=4)
        if found:
            subset, c = found
            for pair in combinations(subset, 2):
                assert color(pair) == c

    def test_impossible_returns_none(self):
        """A rainbow colouring (all colours distinct) has no monochromatic
        subset beyond the trivial size."""
        color = lambda s: s  # every k-subset its own colour
        assert find_monochromatic_subset(range(6), 2, color, target=3) is None

    def test_target_below_k_rejected(self):
        with pytest.raises(ValueError):
            find_monochromatic_subset(range(5), 3, lambda s: 0, target=2)

    def test_triples(self):
        color = lambda s: (s[2] - s[0]) % 2
        found = find_monochromatic_subset(range(10), 3, color, target=4)
        if found:
            subset, c = found
            for t in combinations(subset, 3):
                assert color(t) == c


class TestPivotPairs:
    def test_matches_guarantee(self):
        color = lambda s: (s[0] + s[1]) % 2
        found = ramsey_pairs(range(30), color, target=4)
        assert found is not None
        subset, c = found
        for pair in combinations(subset, 2):
            assert color(pair) == c

    def test_large_universe(self):
        color = lambda s: 1 if s[1] - s[0] > 5 else 0
        found = ramsey_pairs(range(200), color, target=6)
        assert found is not None
        subset, c = found
        for pair in combinations(subset, 2):
            assert color(pair) == c

    def test_too_small_returns_none(self):
        assert ramsey_pairs(range(3), lambda s: s, target=5) is None


class TestSequentialRefinement:
    def test_single_template(self):
        found = order_invariant_subset(range(12), [(2, lambda s: s[0] % 2)], target=4)
        assert found is not None
        subset, constants = found
        assert len(subset) == 4 and len(constants) == 1

    def test_two_templates_nested_monochromatic(self):
        templates = [
            (2, lambda s: s[0] % 2),
            (2, lambda s: s[1] % 2),
        ]
        found = order_invariant_subset(range(24), templates, target=4)
        assert found is not None
        subset, constants = found
        # both templates constant on the final subset
        for k, behaviour in templates:
            values = {behaviour(p) for p in combinations(subset, k)}
            assert len(values) == 1

    def test_failure_propagates(self):
        templates = [(2, lambda s: s)]  # rainbow
        assert order_invariant_subset(range(8), templates, target=3) is None
