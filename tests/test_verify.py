"""Tests for local checkability (repro.matching.verify)."""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_loopy_tree,
    single_node_with_loops,
)
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.verify import check_maximal_fm, verify_distributed

F = Fraction


def outputs_for(g, weights_by_eid):
    """Helper: per-node colour-keyed outputs from per-edge weights."""
    out = {}
    for v in g.nodes():
        out[v] = {
            e.color: weights_by_eid.get(e.eid, F(0)) for e in g.incident_edges(v)
        }
    return out


class TestDistributedChecker:
    def test_accepts_valid_solution_in_one_round(self):
        g = path_graph(5)
        proposal = outputs_for(g, {e.eid: F(1, 2) for e in g.edges()})
        ok, verdicts, rounds = verify_distributed(g, proposal)
        assert ok
        assert rounds == 1  # PO-checkability: a single round suffices
        assert all(v.ok for v in verdicts.values())

    def test_rejects_uncovered_edge_locally(self):
        g = path_graph(3)
        proposal = outputs_for(g, {0: F(1, 2)})
        ok, verdicts, _ = verify_distributed(g, proposal)
        assert not ok
        # the endpoints of the uncovered edge both reject maximality
        assert not verdicts[1].maximal or not verdicts[2].maximal

    def test_rejects_overload(self):
        g = cycle_graph(3)
        proposal = outputs_for(g, {e.eid: F(3, 4) for e in g.edges()})
        ok, verdicts, _ = verify_distributed(g, proposal)
        assert not ok
        assert any(not v.feasible for v in verdicts.values())

    def test_rejects_endpoint_disagreement(self):
        g = path_graph(2)
        proposal = {0: {1: F(1, 2)}, 1: {1: F(1, 3)}}
        ok, verdicts, _ = verify_distributed(g, proposal)
        assert not ok

    def test_loop_echo_checks_self_saturation(self):
        """For a loop, the checker's exchanged flag is the node's own: the
        loop edge is covered iff the node saturates itself (Figure 4 logic)."""
        g = single_node_with_loops(2)
        ok, _, _ = verify_distributed(g, {0: {1: F(1, 2), 2: F(1, 2)}})
        assert ok
        ok2, verdicts, _ = verify_distributed(g, {0: {1: F(1, 4), 2: F(1, 4)}})
        assert not ok2
        assert not verdicts[0].maximal

    def test_accepts_real_algorithm_output(self):
        g = random_loopy_tree(5, 1, seed=6)
        alg = greedy_color_algorithm()
        outputs = alg.run_on(g)
        ok, _, rounds = verify_distributed(g, outputs)
        assert ok and rounds == 1


class TestCentralChecker:
    def test_no_problems_on_valid(self):
        g = path_graph(5)
        fm = fm_from_node_outputs(g, outputs_for(g, {e.eid: F(1, 2) for e in g.edges()}))
        assert check_maximal_fm(fm) == []

    def test_reports_both_kinds(self):
        g = path_graph(3)
        fm = fm_from_node_outputs(g, outputs_for(g, {0: F(3, 2)}))
        problems = check_maximal_fm(fm)
        assert any("outside" in p for p in problems)
        assert any("saturated" in p for p in problems)
