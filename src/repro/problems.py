"""Locally checkable problems: a uniform facade (paper, Section 2).

The paper frames maximal fractional matching as a *locally checkable*
problem: a constant-time distributed algorithm can verify a proposed
solution.  This module packages the repository's problems behind one
interface so downstream code can verify any solution uniformly — and so
the "locally checkable" claim itself is part of the API, not folklore.

Each problem states its output encoding (what each node announces) and
offers :meth:`LocallyCheckableProblem.violations`, returning human-readable
problems (empty iff the solution is accepted).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Dict, Hashable, List, Mapping, Set

from .graphs.multigraph import ECGraph
from .matching.fm import InconsistentOutputError, fm_from_node_outputs
from .matching.vertex_cover import is_vertex_cover

Node = Hashable

__all__ = [
    "LocallyCheckableProblem",
    "MaximalFractionalMatching",
    "MaximalMatching",
    "TwoApproxVertexCover",
    "PROBLEMS",
]


class LocallyCheckableProblem(ABC):
    """A problem whose solutions a local algorithm can verify.

    ``radius`` is the verification radius: how far the distributed checker
    must look (1 for everything here — each check involves a node and its
    direct neighbours only).
    """

    name: str = "problem"
    radius: int = 1

    @abstractmethod
    def violations(self, g: ECGraph, solution: Any) -> List[str]:
        """Why the solution is invalid (empty list = accepted)."""

    def is_valid(self, g: ECGraph, solution: Any) -> bool:
        """Whether the solution passes all checks."""
        return not self.violations(g, solution)


class MaximalFractionalMatching(LocallyCheckableProblem):
    """Output encoding: per node, a mapping ``{incident colour: weight}``.

    Checks endpoint consistency, feasibility (loads at most 1) and
    maximality (every edge has a saturated endpoint) — Sections 1.2 and 2.
    """

    name = "maximal-fractional-matching"

    def violations(self, g: ECGraph, solution: Mapping[Node, Mapping[Any, Fraction]]) -> List[str]:
        try:
            fm = fm_from_node_outputs(g, solution)
        except InconsistentOutputError as exc:
            return [f"inconsistent outputs: {exc}"]
        problems = fm.feasibility_violations()
        problems.extend(
            f"edge {eid} has no saturated endpoint" for eid in fm.maximality_violations()
        )
        return problems


class MaximalMatching(LocallyCheckableProblem):
    """Output encoding: a set of edge ids.

    Checks that chosen edges are loop-free, pairwise disjoint, and that no
    further edge could be added (Section 1.1's integral problem).
    """

    name = "maximal-matching"

    def violations(self, g: ECGraph, solution: Set[int]) -> List[str]:
        problems: List[str] = []
        matched: Set[Node] = set()
        for eid in sorted(solution):
            if not g.has_edge_id(eid):
                problems.append(f"edge id {eid} does not exist")
                continue
            e = g.edge(eid)
            if e.is_loop:
                problems.append(f"edge {eid} is a loop and cannot be matched")
                continue
            if e.u in matched or e.v in matched:
                problems.append(f"edge {eid} overlaps an earlier matching edge")
                continue
            matched.add(e.u)
            matched.add(e.v)
        for e in g.edges():
            if not e.is_loop and e.u not in matched and e.v not in matched:
                problems.append(f"edge {e.eid} could still be added (not maximal)")
        return problems


class TwoApproxVertexCover(LocallyCheckableProblem):
    """Output encoding: a set of nodes.

    Checks the covering property locally.  (The approximation *ratio* is a
    global quantity and not locally checkable — only the feasibility is;
    the ratio certificates live in :mod:`repro.matching.vertex_cover`.)
    """

    name = "vertex-cover"

    def violations(self, g: ECGraph, solution: Set[Node]) -> List[str]:
        unknown = [v for v in solution if not g.has_node(v)]
        if unknown:
            return [f"unknown nodes in cover: {unknown[:3]}"]
        if is_vertex_cover(g, set(solution)):
            return []
        uncovered = [
            e.eid for e in g.edges() if e.u not in solution and e.v not in solution
        ]
        return [f"edge {eid} uncovered" for eid in uncovered]


#: registry of the repository's locally checkable problems
PROBLEMS: Dict[str, LocallyCheckableProblem] = {
    p.name: p
    for p in (
        MaximalFractionalMatching(),
        MaximalMatching(),
        TwoApproxVertexCover(),
    )
}
