"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestSolve:
    def test_solve_greedy(self, capsys):
        code = main(["solve", "--family", "cycle", "--n", "8", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "maximal: True" in out
        assert "accepts" in out

    def test_solve_proposal_on_random(self, capsys):
        code = main([
            "solve", "--family", "random", "--n", "15", "--delta", "4",
            "--algorithm", "proposal",
        ])
        assert code == 0

    def test_solve_zero_fails(self, capsys):
        code = main(["solve", "--family", "path", "--n", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "maximal: False" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "klein-bottle"])

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["solve", "--algorithm", "oracle"])


class TestAdversary:
    def test_adversary_greedy(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "step 0" in out and "step 2" in out
        assert "Omega(Delta)" in out

    def test_adversary_catches_zero(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "incorrect" in out

    def test_deep_verify_flag(self, capsys):
        code = main(["adversary", "--delta", "3", "--algorithm", "greedy", "--deep-verify"])
        assert code == 0


class TestRefute:
    def test_refutes_small_claim(self, capsys):
        code = main(["refute", "--delta", "5", "--algorithm", "greedy", "--claimed-rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "isomorphic radius-1" in out

    def test_consistent_claim_exit_code(self, capsys):
        code = main(["refute", "--delta", "4", "--algorithm", "greedy", "--claimed-rounds", "9"])
        assert code == 2


class TestCoverAndOrder:
    def test_cover(self, capsys):
        code = main(["cover", "--family", "regular", "--n", "12", "--delta", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certified ratio" in out

    def test_order(self, capsys):
        code = main(["order", "--generators", "2", "--radius", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e" in out
        assert len(out.strip().splitlines()) == 5  # identity + 4 slot neighbours


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestExhaustive:
    def test_exhaustive_impossible(self, capsys):
        code = main(["exhaustive", "--delta", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IMPOSSIBLE" in out


class TestSweep:
    def test_smoke_grid_serial(self, capsys):
        code = main(["sweep", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cells" in out
        assert "hit-rate" in out

    def test_custom_grid_json_to_stdout(self, capsys):
        code = main(["sweep", "--algorithms", "greedy", "--deltas", "3", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["rows"][0]["key"] == "greedy/d3/ec/s0"
        assert payload["cache"]["hits"] > 0

    def test_delta_range_spec(self, capsys):
        code = main(["sweep", "--algorithms", "greedy", "--deltas", "3..4", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert code == 0
        assert [row["delta"] for row in payload["rows"]] == [3, 4]

    def test_out_dir_and_resume(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["sweep", "--smoke", "--out", out_dir]) == 0
        capsys.readouterr()
        assert main(["sweep", "--smoke", "--out", out_dir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "(0 computed, 4 resumed)" in out

    def test_bad_delta_spec(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--deltas", "three"])

    def test_min_hit_rate_satisfied(self, capsys):
        code = main(["sweep", "--smoke", "--min-hit-rate", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "canonical-cache hit rate" in out

    def test_min_hit_rate_violated(self, capsys):
        # an impossible floor: the guard must flag it and exit non-zero
        code = main(["sweep", "--smoke", "--min-hit-rate", "1.01"])
        out = capsys.readouterr().out
        assert code == 1
        assert "below required" in out

    def test_deep_chain_for_greedy_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithms", "greedy", "--chain", "po"])

    def test_min_hit_rate_with_zero_lookups_is_na(self, capsys):
        # --no-cache records no lookups: the floor must report n/a, not
        # fail CI (and certainly not divide by zero)
        code = main(["sweep", "--smoke", "--no-cache", "--min-hit-rate", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "n/a" in out
        assert "not applied" in out

    @staticmethod
    def _json_payload(out: str) -> dict:
        return json.loads(next(line for line in out.splitlines() if line.startswith("{")))

    def test_min_hit_rate_gate_is_structured_in_json(self, capsys):
        code = main(["sweep", "--smoke", "--min-hit-rate", "0.1", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        gate = self._json_payload(out)["hit_rate_gate"]
        assert gate["applied"] is True and gate["passed"] is True
        assert gate["min_hit_rate"] == 0.1
        assert gate["hit_rate"] > 0.1
        # the human line still prints alongside the JSON
        assert "canonical-cache hit rate" in out

    def test_min_hit_rate_gate_json_null_on_zero_lookups(self, capsys):
        # the n/a branch must be machine-readable too: hit_rate is an
        # explicit null, applied/passed say the floor never ran
        code = main(
            ["sweep", "--smoke", "--no-cache", "--min-hit-rate", "0.5", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        gate = self._json_payload(out)["hit_rate_gate"]
        assert gate == {
            "min_hit_rate": 0.5,
            "hit_rate": None,
            "applied": False,
            "passed": None,
        }
        assert "n/a" in out  # the text path keeps its account

    def test_min_hit_rate_gate_json_violated(self, capsys):
        code = main(["sweep", "--smoke", "--min-hit-rate", "1.01", "--json"])
        out = capsys.readouterr().out
        assert code == 1
        gate = self._json_payload(out)["hit_rate_gate"]
        assert gate["applied"] is True and gate["passed"] is False

    def test_json_without_floor_has_no_gate_field(self, capsys):
        code = main(["sweep", "--smoke", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hit_rate_gate" not in self._json_payload(out)

    def test_faults_plan_replayed(self, tmp_path, capsys):
        from repro.engine import Fault, FaultPlan

        plan_path = FaultPlan(
            faults=(Fault(kind="raise-worker", cell="greedy/d4/ec/s0"),)
        ).dump(tmp_path / "plan.json")
        code = main(["sweep", "--smoke", "--faults", str(plan_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered in 1 restart(s)" in out

    def test_unsurvivable_faults_name_the_cell(self, tmp_path, capsys):
        from repro.engine import Fault, FaultPlan

        plan = FaultPlan(
            faults=(
                Fault(kind="raise-worker", cell="greedy/d3/ec/s0", attempt=None, times=99),
            )
        )
        plan_path = plan.dump(tmp_path / "plan.json")
        code = main([
            "sweep", "--smoke", "--faults", str(plan_path),
            "--max-restarts", "1", "--out", str(tmp_path / "out"),
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "greedy/d3/ec/s0" in err


class TestExecutionOptionsGroup:
    """The execution-control vocabulary shared by ``sweep`` and ``bench``."""

    @pytest.mark.parametrize("command", ["sweep", "bench"])
    def test_workers_zero_rejected(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([command, "--workers", "0"])
        assert f"repro {command}: workers must be >= 1" in str(exc.value)

    @pytest.mark.parametrize("command", ["sweep", "bench"])
    def test_negative_cell_timeout_rejected(self, command):
        with pytest.raises(SystemExit, match="cell_timeout must be positive"):
            main([command, "--cell-timeout", "-2"])

    @pytest.mark.parametrize("command", ["sweep", "bench"])
    def test_negative_retries_rejected(self, command):
        with pytest.raises(SystemExit, match="retries must be >= 0"):
            main([command, "--retries", "-1"])

    @pytest.mark.parametrize("command", ["sweep", "bench"])
    def test_hosts_require_socket_backend(self, command):
        with pytest.raises(SystemExit, match="hosts only apply to the socket"):
            main([command, "--hosts", "127.0.0.1:9"])

    @pytest.mark.parametrize("command", ["sweep", "bench"])
    def test_unknown_backend_rejected_by_argparse(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--backend", "carrier-pigeon"])
        assert "invalid choice" in capsys.readouterr().err

    def test_sweep_inline_backend_reported(self, capsys):
        code = main(["sweep", "--smoke", "--backend", "inline", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "via the inline backend" in out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["backend"] == "inline"
        assert len(payload["rows"]) == 4

    def test_sweep_socket_backend_loopback(self, capsys):
        code = main([
            "sweep", "--smoke", "--backend", "socket", "--workers", "2", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["backend"] == "socket"
        assert [row["key"] for row in payload["rows"]] == sorted(
            row["key"] for row in payload["rows"]
        )


class TestServe:
    def test_serve_answers_then_exits(self, capsys):
        # --max-requests lets the test run the real accept loop to completion
        code = main(["serve", "--max-requests", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard server listening on 127.0.0.1:" in out
        assert "stopped after 0 request(s)" in out


class TestVerify:
    def test_refuted_claim_exit_zero(self, capsys):
        code = main(["verify", "--delta", "4", "--claimed-rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "radius-1" in out

    def test_consistent_claim_exit_two(self):
        assert main(["verify", "--delta", "4", "--claimed-rounds", "9"]) == 2

    def test_chain_po_uses_proposal(self, capsys):
        code = main([
            "verify", "--delta", "3", "--claimed-rounds", "1", "--chain", "po", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["kind"] == "locality-violation"
        assert payload["chain"] == "po"

    def test_chain_rejects_other_algorithms(self):
        with pytest.raises(SystemExit):
            main([
                "verify", "--delta", "3", "--claimed-rounds", "1",
                "--chain", "po", "--algorithm", "greedy",
            ])

    def test_json_to_file(self, tmp_path):
        target = tmp_path / "verdict.json"
        main(["verify", "--delta", "4", "--claimed-rounds", "1", "--json", str(target)])
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["kind"] == "locality-violation"


class TestVerifyStore:
    def _sweep(self, out_dir):
        assert main(["sweep", "--smoke", "--no-cache", "--out", str(out_dir)]) == 0

    def test_clean_store_verifies(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        self._sweep(out_dir)
        code = main(["verify", "--store", str(out_dir), "--json"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "4/4 rows match" in captured
        payload = json.loads(captured.strip().splitlines()[-1])
        assert payload["mismatched"] == []
        assert payload["summary_consistent"] is True

    def test_tampered_store_fails(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        self._sweep(out_dir)
        shard = out_dir / "shard-0.jsonl"
        lines = shard.read_text().splitlines()
        row = json.loads(lines[0])
        row["witness_depth"] = 42
        lines[0] = json.dumps(row, sort_keys=True)
        shard.write_text("\n".join(lines) + "\n")
        code = main(["verify", "--store", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISMATCH" in out

    def test_store_and_claimed_rounds_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["verify", "--store", str(tmp_path), "--claimed-rounds", "1"])

    def test_one_of_store_or_claim_required(self):
        with pytest.raises(SystemExit, match="required"):
            main(["verify"])

    def test_missing_store_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="no such store"):
            main(["verify", "--store", str(tmp_path / "nope")])
