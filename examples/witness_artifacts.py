"""Export the lower-bound witnesses as shareable artefacts.

Runs the Section 4 adversary, then renders the final witness pair as
Graphviz DOT (a machine-generated Figure 6/7) and serialises it as JSON —
the hard instances are first-class outputs a downstream user can archive,
diff across implementations, or feed back in as regression inputs.

Run:  python examples/witness_artifacts.py       (writes into ./artifacts/)
"""

from __future__ import annotations

import json
import pathlib

from repro.core import hard_instance_pair, run_adversary
from repro.graphs.render import ascii_summary, witness_pair_to_dot
from repro.graphs.serialize import graph_to_json, witness_step_to_json
from repro.matching.greedy_color import greedy_color_algorithm


def main() -> None:
    delta = 5
    out_dir = pathlib.Path("artifacts")
    out_dir.mkdir(exist_ok=True)

    witness = run_adversary(greedy_color_algorithm(), delta)
    top = witness.steps[-1]

    dot_path = out_dir / f"witness_delta{delta}.dot"
    dot_path.write_text(witness_pair_to_dot(top))
    print(f"wrote {dot_path} (render with: dot -Tpng {dot_path} -o witness.png)")

    json_path = out_dir / f"witness_delta{delta}.json"
    json_path.write_text(witness_step_to_json(top))
    print(f"wrote {json_path} ({json_path.stat().st_size} bytes)")

    g, h, node_g, node_h, color = hard_instance_pair(delta)
    pair_path = out_dir / f"hard_pair_delta{delta}.json"
    pair_path.write_text(
        json.dumps(
            {
                "delta": delta,
                "witness_color": color,
                "G": json.loads(graph_to_json(g)),
                "H": json.loads(graph_to_json(h)),
            },
            sort_keys=True,
        )
    )
    print(f"wrote {pair_path}")

    print()
    print(f"final pair at depth {top.index} (Delta = {delta}):")
    print("G side:")
    print(ascii_summary(top.graph_g))
    print("H side:")
    print(ascii_summary(top.graph_h))
    print()
    print(witness.conclusion())


if __name__ == "__main__":
    main()
