"""Cole-Vishkin colour reduction and 3-colouring of rooted forests.

The classical ``O(log* n)`` symmetry-breaking primitive (used by the
Panconesi-Rizzi ``O(Delta + log* n)`` maximal-matching baseline of the
paper's Section 1.1).  Starting from the unique identifiers, each iteration
re-colours every node from the pair (own colour, parent colour), roughly
halving the number of colour *bits*; once at most 6 colours remain, three
shift-down + recolour phases reduce to 3 colours.

The implementation is a *round-counted local simulation*: per communication
round every node computes its next value from its own state and its forest
parent's previous-round state only (the information a real message exchange
would deliver), and the total number of rounds is returned.  This style is
used for all the ID-model symmetry-breaking substrates; the fractional
matching algorithms that the paper is actually about additionally run as
fully fledged message-passing state machines in :mod:`repro.local`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable

__all__ = [
    "cv_step_count",
    "cole_vishkin_3color",
    "validate_forest_coloring",
]


def _bit_length_palette(m: int) -> int:
    """Number of bits needed for colours ``0 .. m-1``."""
    return max((m - 1).bit_length(), 1)


def cv_step_count(max_id: int) -> int:
    """Iterations needed to reach at most 6 colours from palette ``0..max_id``.

    Every node computes this locally from the globally known identifier
    bound, so all nodes agree on the schedule.  The count realises the
    ``log*`` behaviour: one iteration maps a ``b``-bit palette to a
    ``ceil(log2 b) + 1``-bit palette.
    """
    steps = 0
    palette = max_id + 1
    while palette > 6:
        bits = _bit_length_palette(palette)
        palette = 2 * bits
        steps += 1
    return steps


def _cv_iterate(color: int, parent_color: int) -> int:
    """One Cole-Vishkin step: index of the lowest differing bit, plus that bit."""
    diff = color ^ parent_color
    i = (diff & -diff).bit_length() - 1  # lowest set bit index
    return 2 * i + ((color >> i) & 1)


def cole_vishkin_3color(
    parent: Dict[Node, Optional[Node]],
    ids: Dict[Node, int],
) -> Tuple[Dict[Node, int], int]:
    """3-colour a rooted forest in ``O(log* n)`` rounds.

    Parameters
    ----------
    parent:
        Parent pointer of every node (``None`` for roots).  Must be acyclic.
    ids:
        Unique non-negative identifiers; the initial colouring.

    Returns
    -------
    (colors, rounds):
        A proper 3-colouring (values ``{0, 1, 2}``) of the forest — adjacent
        (parent, child) pairs receive distinct colours — and the number of
        communication rounds used (CV iterations + 6 clean-up rounds).
    """
    nodes = list(parent.keys())
    colors = {v: ids[v] for v in nodes}
    max_id = max(ids.values(), default=0)
    steps = cv_step_count(max_id)
    rounds = 0

    def parent_color(v: Node, current: Dict[Node, int]) -> int:
        p = parent[v]
        if p is not None:
            return current[p]
        # virtual parent for roots: any colour different from the node's own
        return 0 if current[v] != 0 else 1

    for _ in range(steps):
        colors = {v: _cv_iterate(colors[v], parent_color(v, colors)) for v in nodes}
        rounds += 1

    # shift-down + recolour, removing colours 5, 4, 3 in turn
    for drop in (5, 4, 3):
        shifted = {}
        for v in nodes:
            p = parent[v]
            if p is not None:
                shifted[v] = colors[p]
            else:
                shifted[v] = next(c for c in range(6) if c != colors[v])
        rounds += 1  # the shift-down exchange
        new_colors = {}
        for v in nodes:
            if shifted[v] == drop:
                # after shift-down all children of v share v's old colour and
                # v's parent colour is known; pick a free colour in {0,1,2}
                p = parent[v]
                forbidden = {colors[v]}  # the uniform colour of v's children
                if p is not None:
                    forbidden.add(shifted[p])
                new_colors[v] = next(c for c in range(3) if c not in forbidden)
            else:
                new_colors[v] = shifted[v]
        colors = new_colors
        rounds += 1  # announcing the recolour
    return colors, rounds


def validate_forest_coloring(parent: Dict[Node, Optional[Node]], colors: Dict[Node, int]) -> bool:
    """Whether ``colors`` properly colours the forest's parent-child edges."""
    return all(
        parent[v] is None or colors[v] != colors[parent[v]] for v in parent
    )
