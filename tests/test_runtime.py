"""Tests for the LOCAL runtime and network adapters (repro.local.runtime)."""

from __future__ import annotations

from typing import Any, Dict, Optional

import networkx as nx
import pytest

from repro.graphs.families import cycle_graph, single_node_with_loops, star_graph
from repro.graphs.ports import po_double_from_ec
from repro.local.algorithm import DistributedAlgorithm
from repro.local.context import NodeContext
from repro.local.runtime import ECNetwork, IDNetwork, PONetwork, run, run_rounds


class EchoOnce(DistributedAlgorithm):
    """Sends its port list on every port; halts after one round with the inbox."""

    def __init__(self, model: str = "EC"):
        self.model = model

    def initial_state(self, ctx: NodeContext):
        return None

    def send(self, state, ctx: NodeContext):
        if state is not None:
            return {}
        return {p: ("hello", tuple(ctx.ports)) for p in ctx.ports}

    def receive(self, state, ctx: NodeContext, inbox):
        return dict(inbox) if state is None else state

    def output(self, state, ctx: NodeContext):
        return state


class NeverHalts(DistributedAlgorithm):
    model = "EC"

    def initial_state(self, ctx):
        return 0

    def send(self, state, ctx):
        return {}

    def receive(self, state, ctx, inbox):
        return state + 1

    def output(self, state, ctx):
        return None


class CountsRounds(DistributedAlgorithm):
    """Halts after a fixed number of rounds, outputting the count."""

    model = "EC"

    def __init__(self, rounds: int):
        self.rounds = rounds

    def initial_state(self, ctx):
        return 0

    def send(self, state, ctx):
        return {p: state for p in ctx.ports}

    def receive(self, state, ctx, inbox):
        return state + 1

    def output(self, state, ctx):
        return state if state >= self.rounds else None

    def snapshot(self, state, ctx):
        return ("partial", state)


class TestECNetwork:
    def test_messages_cross_edges(self):
        g = star_graph(2)
        result = run(ECNetwork(g), EchoOnce())
        # leaf 1 (port colour 1) hears from the centre
        assert result.outputs[1][1][0] == "hello"
        assert result.rounds == 1

    def test_loop_echo(self):
        """A message sent on a loop port returns to the sender on that port:
        the neighbour across a loop is a copy of oneself (Figure 4)."""
        g = single_node_with_loops(2)
        result = run(ECNetwork(g), EchoOnce())
        inbox = result.outputs[0]
        assert set(inbox.keys()) == {1, 2}
        assert inbox[1] == ("hello", (1, 2))

    def test_unknown_port_rejected(self):
        class BadSender(EchoOnce):
            def send(self, state, ctx):
                return {99: "boom"} if state is None else {}

        with pytest.raises(KeyError):
            run(ECNetwork(star_graph(2)), BadSender())


class TestPONetwork:
    def test_out_reaches_in(self):
        d = po_double_from_ec(star_graph(1))
        result = run(PONetwork(d), EchoOnce("PO"))
        # node 0 has an out-arc colour 1 to node 1 and an in-arc from it
        inbox0 = result.outputs[0]
        assert ("in", 1) in inbox0 and ("out", 1) in inbox0

    def test_directed_loop_wires_out_to_in(self):
        d = po_double_from_ec(single_node_with_loops(1))
        result = run(PONetwork(d), EchoOnce("PO"))
        inbox = result.outputs[0]
        assert set(inbox.keys()) == {("out", 1), ("in", 1)}


class TestIDNetwork:
    def test_ports_are_neighbor_ids(self):
        g = nx.path_graph(3)
        result = run(IDNetwork(g), EchoOnce("ID"))
        assert set(result.outputs[1].keys()) == {0, 2}

    def test_self_loops_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(ValueError):
            IDNetwork(g)

    def test_identifier_exposed(self):
        g = nx.path_graph(2)
        net = IDNetwork(g)
        assert net.context(1).identifier == 1


class TestRun:
    def test_model_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run(ECNetwork(star_graph(1)), EchoOnce("PO"))

    def test_zero_round_algorithm(self):
        class Immediate(EchoOnce):
            def output(self, state, ctx):
                return "done"

        result = run(ECNetwork(star_graph(2)), Immediate())
        assert result.rounds == 0 and result.halted

    def test_max_rounds_cap(self):
        result = run(ECNetwork(star_graph(2)), NeverHalts(), max_rounds=5)
        assert not result.halted
        assert result.rounds == 5

    def test_round_count_is_exact(self):
        result = run(ECNetwork(cycle_graph(4)), CountsRounds(3))
        assert result.rounds == 3
        assert all(v == 3 for v in result.outputs.values())

    def test_message_counts_recorded(self):
        result = run(ECNetwork(cycle_graph(4)), CountsRounds(2))
        assert result.message_counts[0] == 8  # 4 nodes x 2 ports


class TestRunRounds:
    def test_snapshot_used_for_unfinished_nodes(self):
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(10), rounds=3)
        assert result.rounds == 3
        assert all(v == ("partial", 3) for v in result.outputs.values())

    def test_stops_early_when_all_halt(self):
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(2), rounds=10)
        assert result.rounds == 2
        assert all(v == 2 for v in result.outputs.values())

    def test_zero_rounds(self):
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(5), rounds=0)
        assert result.rounds == 0
        assert all(v == ("partial", 0) for v in result.outputs.values())

    def test_message_counts_recorded_like_run(self):
        """``run_rounds`` records per-round message counts just as ``run`` does."""
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(2), rounds=10)
        assert result.message_counts == [8, 8]  # 4 nodes x 2 ports, both rounds

    def test_message_counts_respect_the_budget(self):
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(10), rounds=3)
        assert len(result.message_counts) == 3
        assert all(c == 8 for c in result.message_counts)

    def test_message_counts_empty_for_zero_rounds(self):
        result = run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(5), rounds=0)
        assert result.message_counts == []


class TestTracing:
    """Optional observability: the runtime reports spans when given a tracer."""

    def test_run_span_attrs(self):
        from repro.obs import Tracer

        tracer = Tracer()
        result = run(ECNetwork(cycle_graph(4)), CountsRounds(2), tracer=tracer)
        (span,) = tracer.find("local.run")
        assert span.attrs["model"] == "EC"
        assert span.attrs["nodes"] == 4
        assert span.attrs["rounds"] == result.rounds
        assert span.attrs["halted"] is True
        assert span.attrs["messages"] == sum(result.message_counts)

    def test_run_rounds_span_reports_budget(self):
        from repro.obs import Tracer

        tracer = Tracer()
        run_rounds(ECNetwork(cycle_graph(4)), CountsRounds(10), rounds=3, tracer=tracer)
        (span,) = tracer.find("local.run_rounds")
        assert span.attrs["budget"] == 3
        assert span.attrs["rounds"] == 3
        assert len(tracer.find("local.round")) == 3

    def test_round_spans_carry_message_and_state_observations(self):
        from repro.obs import Tracer

        tracer = Tracer()
        run(ECNetwork(cycle_graph(4)), CountsRounds(2), tracer=tracer)
        rounds = tracer.find("local.round")
        assert [s.attrs["round"] for s in rounds] == [0, 1]
        assert all(s.attrs["messages"] == 8 for s in rounds)
        assert all(s.attrs["state_size"] > 0 for s in rounds)

    def test_metrics_counters_accumulate(self):
        from repro.obs import Tracer

        tracer = Tracer()
        run(ECNetwork(cycle_graph(4)), CountsRounds(2), tracer=tracer)
        counters = {c["name"]: c["value"] for c in tracer.metrics.snapshot()["counters"]}
        assert counters["local.runs"] == 1
        assert counters["local.rounds"] == 2
        assert counters["local.messages"] == 16

    def test_disabled_tracer_changes_nothing(self):
        """The default (no tracer) path returns identical results."""
        plain = run(ECNetwork(cycle_graph(4)), CountsRounds(3))
        from repro.obs import Tracer

        traced = run(ECNetwork(cycle_graph(4)), CountsRounds(3), tracer=Tracer())
        assert plain.outputs == traced.outputs
        assert plain.rounds == traced.rounds
        assert plain.message_counts == traced.message_counts


class TestKeywordOnlyOptions:
    """run()/run_rounds() options are keyword-only — the PR 3 shims are gone."""

    def _network(self):
        return ECNetwork(cycle_graph(4))

    def test_run_positional_options_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            run(self._network(), CountsRounds(2), 50)  # positional max_rounds
        with pytest.raises(TypeError, match="positional"):
            run(self._network(), CountsRounds(2), 50, False, "raise")

    def test_run_rounds_positional_options_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            run_rounds(self._network(), CountsRounds(10), 3, False)

    def test_keyword_only_calls_work_without_warnings(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(
                self._network(), CountsRounds(3), max_rounds=50,
                sanitize=False, sanitize_mode="raise",
            )
            bounded = run_rounds(
                self._network(), CountsRounds(10), 3,
                sanitize=False, sanitize_mode="raise",
            )
        assert result.halted
        assert bounded.rounds <= 3
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
