"""Tests for the runtime locality sanitizer (repro.local.sanitize)."""

from __future__ import annotations

import random

import pytest

from repro.graphs.families import path_graph, star_graph
from repro.local.context import NodeContext
from repro.local.randomized import tape_globals, uniform_tape
from repro.local.runtime import ECNetwork, IDNetwork, run
from repro.local.sanitize import (
    MODEL_ALLOWED,
    AccessLog,
    LocalityViolation,
    SanitizedContext,
    allowed_attributes,
    wrap_contexts,
)
from repro.local.views import FullInformationEC
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.kuhn_approx import DoublingFM
from repro.matching.proposal import ProposalFM
from repro.matching.random_priority import RandomPriorityFM
from repro.matching.verify import LocalFMVerifier


class CheatingFM(ProposalFM):
    """Proposal dynamics that illegally reads the node label."""

    def initial_state(self, ctx: NodeContext):
        state = super().initial_state(ctx)
        state["me"] = ctx.node  # deliberate model violation  # repro: noqa[locality]
        return state


class TestViolationDetection:
    def test_cheating_ec_algorithm_raises(self):
        with pytest.raises(LocalityViolation) as excinfo:
            run(ECNetwork(path_graph(4)), CheatingFM("EC"), sanitize=True)
        assert excinfo.value.attr == "node"
        assert excinfo.value.model == "EC"

    def test_log_mode_records_and_continues(self):
        result = run(
            ECNetwork(path_graph(4)), CheatingFM("EC"), sanitize=True, sanitize_mode="log"
        )
        assert result.halted
        log = result.access_log
        assert not log.clean
        assert {attr for _, attr in log.violations} == {"node"}
        assert len(log.violations) == 4  # one read per node

    def test_unsanitized_run_has_no_log(self):
        result = run(ECNetwork(path_graph(4)), ProposalFM("EC"))
        assert result.access_log is None


class TestShippedAlgorithmsRunClean:
    def _assert_clean_ec(self, algorithm, g, globals_=None):
        result = run(ECNetwork(g, globals_=globals_), algorithm, sanitize=True)
        assert result.halted
        assert result.access_log.clean
        return result

    def test_proposal_fm(self):
        self._assert_clean_ec(ProposalFM("EC"), path_graph(5))

    def test_greedy_color_machine(self):
        g = star_graph(4)
        machine = greedy_color_algorithm().algorithm
        result = self._assert_clean_ec(machine, g, globals_={"palette": g.colors()})
        fm = fm_from_node_outputs(g, {v: dict(o) for v, o in result.outputs.items()})
        assert fm.is_feasible() and fm.is_maximal()

    def test_doubling_machine(self):
        g = path_graph(6)
        self._assert_clean_ec(DoublingFM(), g, globals_={"delta": g.max_degree()})

    def test_full_information_ec(self):
        self._assert_clean_ec(FullInformationEC(2), path_graph(4))

    def test_verifier_runs_clean_under_declared_allowance(self):
        g = path_graph(5)
        outputs = run(ECNetwork(g), ProposalFM("EC")).outputs
        result = run(ECNetwork(g), LocalFMVerifier(outputs), sanitize=True)
        assert result.access_log.clean
        assert all(verdict.ok for verdict in result.outputs.values())

    def test_random_priority_tape_read_is_sanctioned(self):
        g = path_graph(5)
        tape = uniform_tape(g.nodes(), random.Random(7), bits=16)
        result = run(
            ECNetwork(g, globals_=tape_globals(tape)), RandomPriorityFM("EC"), sanitize=True
        )
        assert result.halted
        assert result.access_log.clean

    def test_id_model_allows_identity(self):
        import networkx as nx

        from repro.matching.naive import ParityTiltFM

        g = nx.path_graph(4)
        result = run(IDNetwork(g), ParityTiltFM(), sanitize=True)
        assert result.halted
        assert result.access_log.clean


class TestAccessLogAndPolicy:
    def test_reads_are_counted_per_attribute(self):
        result = run(ECNetwork(path_graph(3)), ProposalFM("EC"), sanitize=True)
        log = result.access_log
        assert log.model == "EC"
        assert log.reads["ports"] > 0
        assert set(log.by_node) == set(path_graph(3).nodes())

    def test_model_policies(self):
        assert "node" not in MODEL_ALLOWED["EC"]
        assert "identifier" not in MODEL_ALLOWED["PO"]
        assert {"node", "identifier"} <= MODEL_ALLOWED["ID"]

    def test_declared_allowance_extends_policy(self):
        class Declared:
            sanitizer_allow = frozenset({"node"})

        assert "node" in allowed_attributes("EC", Declared())
        assert "node" not in allowed_attributes("EC", object())

    def test_proxy_is_read_only(self):
        ctx = NodeContext(node=0, model="EC", ports=("a",))
        wrapped, _ = wrap_contexts({0: ctx}, "EC")
        with pytest.raises(AttributeError):
            wrapped[0].model = "ID"

    def test_proxy_forwards_degree_property(self):
        ctx = NodeContext(node=0, model="EC", ports=("a", "b"))
        log = AccessLog(model="EC")
        proxy = SanitizedContext(ctx, log, allowed_attributes("EC"))
        assert proxy.degree == 2
        assert log.reads["degree"] == 1

    def test_bad_mode_rejected(self):
        ctx = NodeContext(node=0, model="EC", ports=())
        with pytest.raises(ValueError):
            SanitizedContext(ctx, AccessLog(model="EC"), frozenset(), mode="warn")


class TestFrozenGlobals:
    def test_context_globals_are_read_only(self):
        ctx = NodeContext(node=0, model="EC", ports=(), globals={"delta": 3})
        assert ctx.globals["delta"] == 3
        with pytest.raises(TypeError):
            ctx.globals["delta"] = 4  # repro: noqa[frozen-mutation]

    def test_later_mutation_of_source_dict_does_not_leak(self):
        source = {"delta": 3}
        ctx = NodeContext(node=0, model="EC", ports=(), globals=source)
        source["delta"] = 99
        assert ctx.globals["delta"] == 3

    def test_network_contexts_are_read_only(self):
        network = ECNetwork(path_graph(3), globals_={"palette": ("a", "b")})
        ctx = network.context(0)
        with pytest.raises(TypeError):
            ctx.globals["palette"] = ()  # repro: noqa[frozen-mutation]
