"""Property-based tests for the graph substrate: structural invariants that
the lower-bound machinery silently relies on."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.graphs.cover import universal_cover_ec
from repro.graphs.factor import factor_graph, stable_partition
from repro.graphs.families import (
    ec_from_simple_edges,
    greedy_edge_coloring,
    random_bounded_degree_graph,
    random_loopy_tree,
)
from repro.graphs.isomorphism import canonical_rooted_form, rooted_isomorphic
from repro.graphs.lifts import is_covering_map_ec, random_two_lift, unfold_loop
from repro.graphs.loopy import loopiness, min_direct_loops
from repro.graphs.multigraph import ECGraph
from repro.graphs.neighborhoods import ball
from repro.local.views import ec_view_tree

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=8)


class TestMultigraphInvariants:
    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_add_remove_roundtrip(self, seed, n):
        g = random_loopy_tree(n, 1, seed=seed)
        before = {(repr(e.u), repr(e.v), repr(e.color)) for e in g.edges()}
        e = g.edges()[seed % g.num_edges()]
        removed = g.remove_edge(e.eid)
        g.add_edge(removed.u, removed.v, removed.color)
        after = {(repr(e.u), repr(e.v), repr(e.color)) for e in g.edges()}
        assert before == after
        g.validate()

    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_handshake_with_loops(self, seed, n):
        """Sum of degrees = 2 * non-loops + loops under the EC convention."""
        g = random_loopy_tree(n, 2, seed=seed)
        non_loops = sum(1 for e in g.edges() if not e.is_loop)
        loops = sum(1 for e in g.edges() if e.is_loop)
        assert sum(g.degree(v) for v in g.nodes()) == 2 * non_loops + loops

    @given(seeds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_copy_equivalence(self, seed, n):
        g = random_bounded_degree_graph(3 * n, 4, seed=seed)
        h = g.copy()
        assert {e.eid for e in h.edges()} == {e.eid for e in g.edges()}
        for v in g.nodes():
            assert h.incident_colors(v) == g.incident_colors(v)


class TestColoringProperty:
    @given(seeds, st.integers(min_value=3, max_value=14))
    @settings(max_examples=30, deadline=None)
    def test_greedy_edge_coloring_proper(self, seed, n):
        rng = random.Random(seed)
        edges = []
        for v in range(1, n):
            edges.append((rng.randrange(v), v))
        coloring = greedy_edge_coloring(edges)
        g = ec_from_simple_edges(edges)
        g.validate()  # properness enforced structurally
        assert len(coloring) == len(edges)


class TestFactorProperties:
    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_factor_is_idempotent(self, seed, n):
        """The factor graph is its own factor (it is the minimal base)."""
        g = random_loopy_tree(n, 1, seed=seed)
        fg, _ = factor_graph(g)
        ffg, _ = factor_graph(fg)
        assert ffg.num_nodes() == fg.num_nodes()
        assert ffg.num_edges() == fg.num_edges()

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_lift_does_not_change_factor_size(self, seed, n):
        """G and any 2-lift of G have factor graphs of equal size — they
        carry the same symmetry-breaking information."""
        g = random_loopy_tree(n, 1, seed=seed)
        fg, _ = factor_graph(g)
        lifted, _ = random_two_lift(g, random.Random(seed + 1))
        flifted, _ = factor_graph(lifted)
        assert flifted.num_nodes() == fg.num_nodes()

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_loopiness_invariant_under_lifts(self, seed, n):
        g = random_loopy_tree(n, 2, seed=seed)
        lifted, _ = random_two_lift(g, random.Random(seed + 2))
        assert loopiness(lifted) == loopiness(g)

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_same_class_nodes_have_equal_views(self, seed, n):
        """Colour refinement never separates less than views do: nodes in
        one stable class have equal view trees at any depth."""
        g = random_loopy_tree(n, 1, seed=seed)
        cls = stable_partition(g)
        by_class = {}
        for v in g.nodes():
            by_class.setdefault(cls[v], []).append(v)
        for members in by_class.values():
            views = {ec_view_tree(g, v, 3) for v in members}
            assert len(views) == 1


class TestBallCoverConsistency:
    @given(seeds, st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_tree_ball_matches_cover_ball(self, seed, n, radius):
        """On a loop-free tree, tau_r(G, v) is isomorphic to the radius-r
        truncated universal cover (a tree is its own cover)."""
        rng = random.Random(seed)
        edges = [(rng.randrange(v), v) for v in range(1, n)]
        g = ec_from_simple_edges(edges) if edges else None
        if g is None:
            return
        v = rng.randrange(n)
        b = ball(g, v, radius)
        cover = universal_cover_ec(g, v, radius)
        assert rooted_isomorphic(b.graph, b.root, cover.tree, cover.root)

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_unfolding_preserves_balls_outside_anchor(self, seed, n):
        """Away from the unfolded loop, radius-1 balls look the same in G
        and GG (the locality the adversary's induction leans on)."""
        g = random_loopy_tree(n, 2, seed=seed)
        anchor = 0
        loop = g.loops_at(anchor)[0]
        gg, alpha, _ = unfold_loop(g, loop.eid)
        for w in gg.nodes():
            if alpha[w] == anchor:
                continue
            b_lift = ball(gg, w, 1)
            b_base = ball(g, alpha[w], 1)
            assert canonical_rooted_form(b_lift.graph, w) == canonical_rooted_form(
                b_base.graph, alpha[w]
            )
