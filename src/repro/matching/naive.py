"""Deliberately naive / flawed algorithms — the adversary's test subjects.

The lower-bound machinery must not only certify correct algorithms' round
complexity; it must *catch* incorrect fast algorithms with an explicit
certificate.  This module provides canonical specimens:

* :class:`ZeroFM` — outputs 0 everywhere: feasible, maximally non-maximal;
* :class:`DegreeSplitFM` — weight ``1 / max(deg u, deg v)``: a genuine
  1-round lift-invariant algorithm, feasible, and *correct on regular
  graphs* (where maximal FM is trivial, as the paper notes) but non-maximal
  in general — the adversary refutes it on its loopy instances;
* :class:`SelfishFM` — each node announces ``1/deg`` for every incident
  edge: saturates everyone in its own accounting, but endpoints disagree on
  non-regular edges — an inconsistent-output specimen;
* :class:`ParityTiltFM` — an ID-model machine whose weights depend on
  identifier *parity*: order-*variant* on purpose, the specimen for the
  Ramsey extraction of Section 5.4 (on an all-even or all-odd identifier
  set it becomes order-invariant).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Hashable, Optional

from ..graphs.multigraph import ECGraph
from ..local.algorithm import DistributedAlgorithm, ECWeightAlgorithm
from ..local.context import NodeContext

Node = Hashable
Color = Hashable

__all__ = ["ZeroFM", "DegreeSplitFM", "SelfishFM", "ParityTiltFM"]


class ZeroFM(ECWeightAlgorithm):
    """The all-zero assignment: trivially feasible, never maximal on non-empty graphs."""

    name = "zero"

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        return {
            v: {c: Fraction(0) for c in g.incident_colors(v)} for v in g.nodes()
        }


class DegreeSplitFM(ECWeightAlgorithm):
    """``y(e) = 1 / max(deg(u), deg(v))`` (a loop uses its endpoint's degree).

    A *bona fide* 1-round algorithm: the weight depends only on the two
    endpoint degrees, which are visible within radius 1 of the edge.  It is
    lift-invariant and feasible (a node's load is at most
    ``deg * (1/deg) = 1``), and on regular graphs it saturates everyone —
    a correct maximal FM.  On irregular graphs high-degree nodes stay
    unsaturated next to low-degree ones, so the edge between two such nodes
    can be uncovered; the adversary produces the refuting certificate.
    """

    name = "degree-split"

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        out: Dict[Node, Dict[Color, Fraction]] = {}
        for v in g.nodes():
            weights: Dict[Color, Fraction] = {}
            for e in g.incident_edges(v):
                d = max(g.degree(e.u), g.degree(e.v))
                weights[e.color] = Fraction(1, d)
            out[v] = weights
        return out


class SelfishFM(ECWeightAlgorithm):
    """Each node claims ``1/deg`` on every incident edge, ignoring the other side.

    Every node believes itself saturated, but the two endpoints of an edge
    between different-degree nodes announce different weights — the solution
    is not even well-defined.  Exercises the endpoint-consistency check of
    :func:`repro.matching.fm.fm_from_node_outputs` and the corresponding
    ``incorrect-output`` refutation path.
    """

    name = "selfish"

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        return {
            v: {c: Fraction(1, max(g.degree(v), 1)) for c in g.incident_colors(v)}
            for v in g.nodes()
        }


class ParityTiltFM(DistributedAlgorithm):
    """ID-model: split the residual unevenly according to identifier parity.

    Round 1 exchanges identifiers; thereafter every node assigns its ports
    weights proportional to ``2`` (even neighbour identifier) or ``1`` (odd),
    normalised to its capacity.  The output genuinely depends on the
    identifiers' *values*, not just their order — so the algorithm is not
    order-invariant on a mixed-parity identifier set, but becomes
    order-invariant on any set of identifiers with constant parity pattern.
    It is the specimen for :func:`repro.core.sim_oi_id.
    extract_order_invariant_ids`: the Ramsey search discovers a
    constant-parity subset.

    (It is *not* a correct maximal-FM algorithm in general; its role is to
    exhibit identifier-value dependence, not correctness.)
    """

    model = "ID"

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        return {"round": 0, "weights": None}

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        if state["round"] == 0:
            return {p: ctx.identifier for p in ctx.ports}
        return {}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        state = dict(state)
        if state["round"] == 0:
            tilts = {p: (2 if inbox.get(p, 1) % 2 == 0 else 1) for p in ctx.ports}
            total = sum(tilts.values())
            if total:
                state["weights"] = {p: Fraction(t, total) for p, t in tilts.items()}
            else:
                state["weights"] = {}
        state["round"] += 1
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, Fraction]]:
        if state["weights"] is None:
            return None
        return dict(state["weights"])

    def snapshot(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, Fraction]]:
        """Zero weights before the identifier exchange has happened."""
        if state["weights"] is None:
            return {p: Fraction(0) for p in ctx.ports}
        return dict(state["weights"])
