"""Tests for the ``repro trace`` CLI (the ISSUE acceptance command included)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestTraceAdversary:
    def test_acceptance_command(self, tmp_path, capsys):
        """``repro trace adversary --delta 6 --json out.json`` exits 0 and the
        dump contains at least Delta-2 adversary.step spans."""
        out = tmp_path / "out.json"
        assert main(["trace", "adversary", "--delta", "6", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == 1

        def walk(spans):
            for s in spans:
                yield s
                yield from walk(s["children"])

        names = [s["name"] for s in walk(doc["spans"])]
        assert names.count("adversary.step") >= 4  # Delta - 2
        stdout = capsys.readouterr().out
        assert "adversary steps" in stdout
        assert "adversary.run" in stdout

    def test_jsonl_dump_is_one_object_per_line(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "adversary", "--delta", "4", "--jsonl", str(out)]) == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows, "expected at least one span row"
        assert all({"id", "parent", "name"} <= set(r) for r in rows)

    def test_json_schema_fields(self, tmp_path):
        out = tmp_path / "out.json"
        main(["trace", "adversary", "--delta", "4", "--json", str(out)])
        doc = json.loads(out.read_text())
        assert set(doc) == {"version", "command", "spans", "metrics"}
        span = doc["spans"][0]
        assert {"name", "start", "duration", "self_time", "attrs", "counters", "children"} <= set(span)
        counter_names = {c["name"] for c in doc["metrics"]["counters"]}
        assert "adversary.steps" in counter_names


class TestTraceDemoAndTheorem:
    def test_demo_exits_zero(self, capsys):
        assert main(["trace", "demo", "--delta", "4"]) == 0
        out = capsys.readouterr().out
        assert "trace.demo" in out

    def test_theorem_po_chain(self, capsys):
        assert main(["trace", "theorem", "--delta", "4"]) == 0
        out = capsys.readouterr().out
        assert "theorem.refute" in out

    def test_profile_flag_prints_hottest_spans(self, capsys):
        assert main(["trace", "demo", "--delta", "4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "self ms" in out  # the profile table header

    def test_max_depth_limits_tree(self, capsys):
        assert main(["trace", "adversary", "--delta", "4", "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "adversary.run" in out
        assert "adversary.unfold" not in out  # depth 2, cut off

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonsense"])
