"""Process-parallel sweep execution with per-worker tracers and caching.

:func:`run_sweep` shards a grid's pending cells round-robin across a
``multiprocessing`` pool (spawn context: workers import the package fresh,
no inherited interpreter state).  Each worker shard runs under

* its own :class:`repro.obs.Tracer` — one ``engine.shard`` span wrapping an
  ``engine.cell`` span per grid point, merged afterwards into a single
  trace document (:func:`repro.obs.export.merge_trace_documents`);
* an installed :class:`repro.engine.cache.CanonicalFormCache`, so every
  witness-ball canonicalisation inside the adversary is memoized; pointing
  workers at a shared on-disk store (``cache_dir`` / ``$REPRO_CACHE_DIR``)
  lets shards reuse each other's forms;
* a :class:`repro.engine.store.ResultStore` shard file, appended row by
  row, which is what makes a killed sweep resumable.

Rows carry no wall-clock data and are merged in cell-key order, so a sweep
result is byte-for-byte identical however many workers produced it.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

from ..graphs.isomorphism import use_canonical_cache
from ..obs.export import merge_trace_documents, trace_document
from ..obs.tracer import Tracer, current_tracer, use_tracer
from .cache import CacheStats, CanonicalFormCache
from .grid import Cell, GridSpec, expand, run_cell
from .store import ResultStore

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Outcome of one sweep: merged rows, cache stats, merged trace."""

    grid: dict
    rows: List[dict]
    workers: int
    cache: CacheStats = field(default_factory=CacheStats)
    trace: Optional[dict] = None
    resumed: int = 0
    out_dir: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    def summary(self) -> str:
        """One-line human account of the sweep."""
        fresh = len(self.rows) - self.resumed
        return (
            f"{len(self.rows)} cells ({fresh} computed, {self.resumed} resumed) "
            f"on {self.workers} worker(s); canonical-form cache hit-rate "
            f"{self.cache.hit_rate:.0%} ({self.cache.hits}/{self.cache.lookups})"
        )


def _shard_cells(cells: List[Cell], shards: int) -> List[List[Cell]]:
    """Deterministic round-robin split; empty shards are dropped."""
    buckets: List[List[Cell]] = [[] for _ in range(max(shards, 1))]
    for index, cell in enumerate(cells):
        buckets[index % len(buckets)].append(cell)
    return [bucket for bucket in buckets if bucket]


def _run_shard(payload: Tuple) -> Tuple[int, List[dict], dict, dict]:
    """Execute one shard of cells; the unit of work a pool worker receives.

    Returns ``(shard_index, rows, trace_document, cache_stats)``.  Must stay
    a module-level function: the spawn context pickles it by reference.
    """
    shard_index, cell_dicts, out_dir, cache_dir, use_cache = payload
    cells = [Cell.from_dict(d) for d in cell_dicts]
    store = ResultStore(out_dir) if out_dir else None
    tracer = Tracer()
    cache = CanonicalFormCache(directory=cache_dir)
    rows: List[dict] = []
    with use_tracer(tracer):
        guard = use_canonical_cache(cache) if use_cache else _NO_CACHE
        with guard:
            with tracer.span("engine.shard", shard=shard_index, cells=len(cells)) as span:
                for cell in cells:
                    row = run_cell(cell, tracer=tracer)
                    rows.append(row)
                    if store is not None:
                        store.append(shard_index, row)
                span.set(
                    cache_hits=cache.stats.hits,
                    cache_misses=cache.stats.misses,
                )
    doc = trace_document(tracer, command=f"sweep shard {shard_index}")
    return shard_index, rows, doc, cache.stats.as_dict()


class _NullGuard:
    """Context manager used when the cache is disabled."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NO_CACHE = _NullGuard()


def run_sweep(
    grid: Union[GridSpec, Mapping, None] = None,
    *,
    workers: int = 0,
    out_dir=None,
    cache_dir=None,
    use_cache: bool = True,
    resume: bool = False,
    tracer=None,
) -> SweepResult:
    """Run every cell of ``grid``, sharded over ``workers`` processes.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, a plain mapping of axes, or ``None`` for the
        default E1 grid.
    workers:
        ``0`` or ``1`` runs serially in-process (no subprocesses — the
        baseline the parallel path must reproduce byte-identically);
        ``n >= 2`` spawns ``n`` pool workers.
    out_dir:
        Results directory (JSONL shards, ``summary.json``, ``trace.json``).
        ``None`` keeps everything in memory — such a sweep cannot resume.
    cache_dir:
        On-disk canonical-form store shared by all workers; defaults to
        ``$REPRO_CACHE_DIR`` when set (workers always get an in-memory LRU).
    use_cache:
        ``False`` disables canonical-form memoization entirely.
    resume:
        Skip cells whose rows already sit in ``out_dir``'s shards; their
        persisted rows are merged into the result untouched.
    tracer:
        Parent tracer for the coordinating ``engine.sweep`` span; defaults
        to the ambient tracer.
    """
    if grid is None:
        spec = GridSpec()
    elif isinstance(grid, GridSpec):
        spec = grid
    else:
        spec = GridSpec.from_mapping(grid)
    tracer = tracer if tracer is not None else current_tracer()
    cells = expand(spec)
    store = ResultStore(out_dir) if out_dir else None

    done: dict = {}
    if resume:
        if store is None:
            raise ValueError("resume=True needs an out_dir to read shards from")
        done = store.completed()
    pending = [cell for cell in cells if cell.key not in done]

    with tracer.span(
        "engine.sweep",
        cells=len(cells),
        pending=len(pending),
        resumed=len(done),
        workers=workers,
    ) as sweep_span:
        shards = _shard_cells(pending, workers if workers >= 2 else 1)
        payloads = [
            (
                index,
                [cell.as_dict() for cell in bucket],
                str(store.directory) if store else None,
                str(cache_dir) if cache_dir else None,
                use_cache,
            )
            for index, bucket in enumerate(shards)
        ]
        if workers >= 2 and payloads:
            # spawn, not fork: workers must re-import the package so no
            # half-initialised interpreter state (or installed caches/
            # tracers) leaks across the process boundary
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(workers, len(payloads))) as pool:
                outcomes = pool.map(_run_shard, payloads)
        else:
            outcomes = [_run_shard(payload) for payload in payloads]

        fresh_rows: List[dict] = []
        shard_docs: List[dict] = []
        stats_dicts: List[dict] = []
        for _, rows, doc, stats in sorted(outcomes, key=lambda item: item[0]):
            fresh_rows.extend(rows)
            shard_docs.append(doc)
            stats_dicts.append(stats)
        cache_stats = CacheStats.merged(stats_dicts)
        sweep_span.set(
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            cache_hit_rate=round(cache_stats.hit_rate, 4),
        )

    all_rows = sorted(
        list(done.values()) + fresh_rows, key=lambda row: row.get("key", "")
    )
    merged = merge_trace_documents(
        shard_docs,
        command=f"sweep ({len(cells)} cells, {workers} workers)",
        extra={"cache": cache_stats.as_dict()},
    )
    result = SweepResult(
        grid=spec.as_dict(),
        rows=all_rows,
        workers=workers,
        cache=cache_stats,
        trace=merged,
        resumed=len(done),
        out_dir=str(store.directory) if store else None,
    )
    if store is not None:
        store.write_summary(
            spec.as_dict(), all_rows, cache_stats=cache_stats.as_dict(), workers=workers
        )
        store.trace_path.write_text(
            json.dumps(merged, indent=2, default=str) + "\n", encoding="utf-8"
        )
    return result
