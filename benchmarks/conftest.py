"""Benchmark-suite plumbing: collect experiment rows, print and persist them.

Every benchmark records the quantities the corresponding paper artefact is
about (witness depths, round counts, approximation ratios, ...) through the
``record`` fixture; a terminal-summary hook prints one table per experiment
so that ``pytest benchmarks/ --benchmark-only`` reproduces the series the
paper reports alongside pytest-benchmark's timing table.  EXPERIMENTS.md
mirrors these tables.

At session end every experiment's rows are additionally persisted as a
``BENCH_<id>.json`` artifact (schema: ``repro.obs.export.
write_bench_artifact`` / docs/observability.md) in ``$REPRO_BENCH_DIR``
(default: the current directory) — **one file per experiment id, keys
sorted**, so an unchanged benchmark reproduces its committed artifact byte
for byte.  Each artifact carries the recorded series, the lint-cleanliness
header, and — when ``$REPRO_BENCH_TRACE`` is set — a hottest-spans profile
of the whole session captured with the ``repro.obs`` tracer.

With ``$REPRO_BENCH_TRAJECTORY`` set to a path, the session also appends
one per-experiment baseline row for the current commit to that
``BENCH_TRAJECTORY.jsonl`` file (suite ``"pytest-bench"``, so the rows
never collide with the ``repro bench`` suites; see
``repro.obs.bench.trajectory`` for the schema).
"""

from __future__ import annotations

import json
import os
import re
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional

import pytest

_ROWS: Dict[str, List[dict]] = defaultdict(list)

_SRC = Path(__file__).resolve().parents[1] / "src"

#: session tracer (enabled via REPRO_BENCH_TRACE=1) and its uninstaller
_TRACER = None
_TRACER_GUARD = None


def _lint_summary() -> Optional[dict]:
    try:
        from repro.lint import lint_paths, summarize

        summary = summarize(lint_paths([_SRC]))
        return {k: summary[k] for k in ("clean", "total", "by_rule")}
    except Exception:  # never block a bench run on the linter
        return None


def pytest_report_header(config):
    """Record whether the tree was model-contract clean for this bench run.

    Every recorded experiment series should be attributable to a tree that
    honours the model contracts; this is ``repro lint --json`` inlined into
    the session header.
    """
    summary = _lint_summary()
    if summary is None:
        return ["repro lint: unavailable"]
    status = "contract-clean" if summary["clean"] else "CONTRACT VIOLATIONS"
    return [f"repro lint: {status} — {json.dumps(summary, sort_keys=True)}"]


def pytest_sessionstart(session):
    """Optionally capture a whole-session trace (REPRO_BENCH_TRACE=1)."""
    global _TRACER, _TRACER_GUARD
    if not os.environ.get("REPRO_BENCH_TRACE"):
        return
    try:
        from repro.obs import Tracer, use_tracer
    except Exception:
        return
    _TRACER = Tracer()
    _TRACER_GUARD = use_tracer(_TRACER)
    _TRACER_GUARD.__enter__()


@pytest.fixture
def record():
    """Record one result row for an experiment: ``record("E1", col=value, ...)``."""

    def _record(experiment: str, **row):
        _ROWS[experiment].append(row)

    return _record


@pytest.fixture
def engine_sweep():
    """Run a grid through :func:`repro.engine.run_sweep`, optionally parallel.

    The opt-in parallel path: ``REPRO_BENCH_WORKERS=N`` (N >= 2) shards the
    grid across a process pool AND replays it serially, asserting the two
    row sets serialise byte-identically — benches recorded from a parallel
    run are guaranteed to be the rows a serial run would have produced.
    Unset (or < 2), the sweep just runs in-process.

    ``REPRO_BENCH_FAULT_SEED=K`` additionally replays the sweep under a
    fault plan sampled from seed ``K`` (``FaultPlan.sample``; worker kills,
    shard truncation, cache damage — see docs/fault_injection.md) and
    asserts the recovered rows still serialise byte-identically, so bench
    runs can double as chaos runs.
    """
    from repro.engine import expand, run_sweep

    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    fault_seed = os.environ.get("REPRO_BENCH_FAULT_SEED")

    def _sweep(grid, **kwargs):
        result = run_sweep(grid, workers=workers, **kwargs)
        reference = json.dumps(result.rows, sort_keys=True).encode()
        if workers >= 2:
            serial = run_sweep(grid, workers=0, **kwargs)
            serial_bytes = json.dumps(serial.rows, sort_keys=True).encode()
            assert reference == serial_bytes, (
                "parallel sweep rows diverge from the serial run"
            )
        if fault_seed is not None:
            from repro.engine import FaultPlan

            plan = FaultPlan.sample([c.key for c in expand(grid)], seed=int(fault_seed))
            faulted = run_sweep(grid, workers=workers, faults=plan, **kwargs)
            faulted_bytes = json.dumps(faulted.rows, sort_keys=True).encode()
            assert reference == faulted_bytes, (
                f"rows diverge under injected faults (seed {fault_seed})"
            )
        return result

    return _sweep


def _experiment_id(experiment: str) -> str:
    """Filename-safe id of an experiment: its first token (``E1``, ``E10``)."""
    token = experiment.split()[0] if experiment.split() else "misc"
    return re.sub(r"[^A-Za-z0-9_-]", "", token) or "misc"


def _write_artifacts(tr) -> None:
    global _TRACER, _TRACER_GUARD
    profile = None
    if _TRACER_GUARD is not None:
        _TRACER_GUARD.__exit__(None, None, None)
        _TRACER_GUARD = None
    if _TRACER is not None:
        from repro.obs import profile_rows

        profile = profile_rows(_TRACER)
    try:
        from repro.obs import write_bench_artifact
    except Exception as exc:
        tr.write_line(f"bench artifacts unavailable: {exc}")
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    lint = _lint_summary()
    groups: Dict[str, List[dict]] = defaultdict(list)
    for experiment in sorted(_ROWS):
        groups[_experiment_id(experiment)].append(
            {"experiment": experiment, "rows": _ROWS[experiment]}
        )
    for experiment_id, series in sorted(groups.items()):
        path = write_bench_artifact(
            out_dir / f"BENCH_{experiment_id}.json",
            experiment_id,
            series,
            lint=lint,
            profile=profile,
        )
        tr.write_line(f"wrote {path}")
    _seed_trajectory(tr, groups)


def _seed_trajectory(tr, groups: Dict[str, List[dict]]) -> None:
    """Append per-experiment baseline rows when $REPRO_BENCH_TRAJECTORY is set.

    The rows carry the recorded series/row counts under suite
    ``"pytest-bench"`` — enough for the trajectory to be non-empty and
    attributable to a commit even before ``repro bench`` has run.
    """
    target = os.environ.get("REPRO_BENCH_TRAJECTORY")
    if not target or not groups:
        return
    try:
        from repro.obs.bench import append_rows, current_commit, make_row
    except Exception as exc:  # never block a bench run on the trajectory
        tr.write_line(f"bench trajectory unavailable: {exc}")
        return
    commit = current_commit()
    rows = [
        make_row(
            suite="pytest-bench",
            experiment=experiment_id,
            commit=commit,
            metrics={
                "series": len(series),
                "rows": sum(len(group["rows"]) for group in series),
            },
        )
        for experiment_id, series in sorted(groups.items())
    ]
    path = append_rows(target, rows)
    tr.write_line(f"appended {len(rows)} baseline row(s) to {path}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.section("reproduction experiment results")
    for line in pytest_report_header(config):
        tr.write_line(line)
    for experiment in sorted(_ROWS):
        rows = _ROWS[experiment]
        columns = list(dict.fromkeys(k for row in rows for k in row))
        widths = {
            c: max(len(c), *(len(str(row.get(c, ""))) for row in rows)) for c in columns
        }
        tr.write_line("")
        tr.write_line(f"[{experiment}]")
        tr.write_line("  " + "  ".join(c.ljust(widths[c]) for c in columns))
        for row in rows:
            tr.write_line(
                "  " + "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
            )
    _write_artifacts(tr)
