"""E8 — Appendix A (Figure 10, Lemma 4): the homogeneous tree order.

Paper claim: the 2d-regular PO-tree admits a linear order whose ordered
neighbourhoods are pairwise isomorphic; the combinatorial construction
assigns each path an odd bracket value.  Measured: order-axiom checks at
scale (antisymmetry, totality, transitivity) and homogeneity over random
translations, plus bracket evaluation cost.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.canonical_order import (
    bracket,
    compare_words,
    concat,
    reduce_word,
    tree_sort_key,
)


def ball(d: int, radius: int):
    steps = [(c, s) for c in range(1, d + 1) for s in (+1, -1)]
    words = {()}
    frontier = {()}
    for _ in range(radius):
        nxt = set()
        for w in frontier:
            for step in steps:
                r = reduce_word(w + (step,))
                if len(r) == len(w) + 1:
                    nxt.add(r)
        words |= nxt
        frontier = nxt
    return sorted(words)


@pytest.mark.parametrize("d,radius", [(2, 3), (3, 2)])
def test_order_axioms_exhaustive(benchmark, record, d, radius):
    words = ball(d, radius)

    def verify():
        violations = 0
        for x, y in combinations(words, 2):
            if compare_words(x, y) != -compare_words(y, x) or compare_words(x, y) == 0:
                violations += 1
        return violations

    violations = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert violations == 0
    record(
        "E8 Lemma 4: order axioms on T-balls",
        generators=d,
        radius=radius,
        nodes=len(words),
        pairs=len(words) * (len(words) - 1) // 2,
        violations=violations,
    )


@pytest.mark.parametrize("d", [2, 3])
def test_homogeneity_random(benchmark, record, d):
    words = ball(d, 3)
    rng = random.Random(99)
    triples = [(rng.choice(words), rng.choice(words), rng.choice(words)) for _ in range(1500)]

    def verify():
        bad = 0
        for x, y, g in triples:
            if compare_words(x, y) != compare_words(concat(g, x), concat(g, y)):
                bad += 1
        return bad

    bad = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert bad == 0
    record(
        "E8 Lemma 4: homogeneity (left invariance)",
        generators=d,
        random_triples=len(triples),
        violations=bad,
    )


def test_sorting_a_large_ball(benchmark, record):
    words = ball(2, 5)
    ordered = benchmark.pedantic(lambda: sorted(words, key=tree_sort_key), rounds=1, iterations=1)
    assert len(ordered) == len(words)
    record(
        "E8 sorting T-balls by the homogeneous order",
        generators=2,
        radius=5,
        nodes=len(words),
        sorted_ok=all(
            compare_words(a, b) == -1 for a, b in zip(ordered[:50], ordered[1:51])
        ),
    )
