"""E14 — brute-force model checking of the lower bound.

An independent confirmation of (a slice of) Theorem 1: over a finite
weight grid, the space of all radius-``t`` view functions is searched
exhaustively.  On the loop-subset universe no 1-round algorithm exists for
any ``Delta >= 2``; for ``Delta = 3`` this coincides exactly with the
theorem's ``> Delta - 2`` bound, proved here by enumeration instead of the
unfold-and-mix construction.
"""

from __future__ import annotations

import pytest

from repro.core.exhaustive import (
    half_integral_grid,
    one_round_universe,
    search_view_function,
)
from repro.graphs.families import cycle_graph, single_node_with_loops


@pytest.mark.parametrize("delta", [2, 3, 4])
def test_one_round_impossible(benchmark, record, delta):
    universe = one_round_universe(delta)
    grid = half_integral_grid(6)
    out = benchmark.pedantic(
        lambda: search_view_function(universe, t=1, grid=grid, max_nodes=5_000_000),
        rounds=1,
        iterations=1,
    )
    assert out.impossible
    record(
        "E14 exhaustive search: no 1-round algorithm exists",
        delta=delta,
        universe_graphs=len(universe),
        distinct_views=out.views,
        grid="sixths (7 values)",
        search_nodes=out.nodes_explored,
        verdict="IMPOSSIBLE",
    )


def test_regular_universe_is_satisfiable(benchmark, record):
    """Control: on a regular-only universe a 1-round function exists (the
    paper's remark that maximal FM is trivial on regular graphs)."""
    universe = [cycle_graph(4), cycle_graph(6), single_node_with_loops(2)]
    out = benchmark.pedantic(
        lambda: search_view_function(universe, t=1, grid=half_integral_grid(2)),
        rounds=1,
        iterations=1,
    )
    assert not out.impossible
    record(
        "E14 exhaustive search: no 1-round algorithm exists",
        delta=2,
        universe_graphs=len(universe),
        distinct_views=out.views,
        grid="halves (control: regular universe)",
        search_nodes=out.nodes_explored,
        verdict="satisfiable",
    )


@pytest.mark.parametrize("denominator", [2, 4, 6, 12])
def test_grid_ablation(benchmark, record, denominator):
    """Ablation: the impossibility is not a grid artefact — it holds at
    every tested grid resolution (coarse halves through twelfths)."""
    universe = one_round_universe(3)
    out = benchmark.pedantic(
        lambda: search_view_function(
            universe, t=1, grid=half_integral_grid(denominator), max_nodes=10_000_000
        ),
        rounds=1,
        iterations=1,
    )
    assert out.impossible
    record(
        "E14 ablation: impossibility across grid resolutions (Delta = 3)",
        grid_denominator=denominator,
        grid_values=denominator + 1,
        search_nodes=out.nodes_explored,
        verdict="IMPOSSIBLE",
    )
