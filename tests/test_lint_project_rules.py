"""Tests for the whole-program rules: engine-concurrency, kernel-escape,
suppression-hygiene."""

from __future__ import annotations

from repro.lint import lint_paths, lint_source

from tests.test_lint_effects import make_tree


def rules_of(findings):
    return sorted({f.rule for f in findings})


def of_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# engine-concurrency
# ---------------------------------------------------------------------------


class TestEngineConcurrency:
    def test_lambda_submitted_directly(self):
        source = (
            "def run(pool):\n"
            "    return pool.submit(lambda: 1)\n"
        )
        findings = lint_source(source, module="fixture")
        assert any(
            f.rule == "engine-concurrency" and "lambda" in f.message
            for f in findings
        )

    def test_nested_function_submitted(self):
        source = (
            "def run(pool):\n"
            "    def work():\n"
            "        return 1\n"
            "    return pool.submit(work)\n"
        )
        findings = lint_source(source, module="fixture")
        assert any(
            f.rule == "engine-concurrency" and "locally-defined" in f.message
            for f in findings
        )

    def test_module_level_function_submitted_is_fine(self):
        source = (
            "def work():\n"
            "    return 1\n"
            "def run(pool):\n"
            "    return pool.submit(work)\n"
        )
        findings = lint_source(source, module="fixture")
        assert of_rule(findings, "engine-concurrency") == []

    def test_lambda_laundered_through_two_helpers(self, tmp_path):
        """THE headline case: the submission is two forwarding layers deep."""
        project_root = tmp_path / "t"
        make_tree(
            project_root,
            {
                "eng/pool.py": (
                    "def _go(pool, fn):\n"
                    "    return pool.submit(fn, 1)\n"
                    "def _mid(pool, fn):\n"
                    "    return _go(pool, fn)\n"
                    "def run(pool):\n"
                    "    return _mid(pool, lambda v: v + 1)\n"
                ),
            },
        )
        findings = lint_paths([project_root])
        hits = of_rule(findings, "engine-concurrency")
        assert any(
            "lambda" in f.message and "reaches a pool submission" in f.message
            for f in hits
        ), "\n".join(f.render() for f in findings)
        # the finding anchors at the call site in run(), not inside the helper
        assert any(f.line == 6 for f in hits)

    def test_laundered_keyword_argument_also_caught(self, tmp_path):
        project_root = tmp_path / "t"
        make_tree(
            project_root,
            {
                "eng/pool.py": (
                    "def _go(pool, fn):\n"
                    "    return pool.submit(fn, 1)\n"
                    "def run(pool):\n"
                    "    return _go(pool, fn=lambda v: v)\n"
                ),
            },
        )
        findings = lint_paths([project_root])
        assert of_rule(findings, "engine-concurrency")

    def test_worker_entry_mutating_global_state(self, tmp_path):
        project_root = tmp_path / "t"
        make_tree(
            project_root,
            {
                "eng/pool.py": (
                    "RESULTS = {}\n"
                    "def entry(shard):\n"
                    "    RESULTS[shard] = 1\n"
                    "def run(pool):\n"
                    "    return pool.submit(entry, 0)\n"
                ),
            },
        )
        findings = lint_paths([project_root])
        assert any(
            f.rule == "engine-concurrency"
            and "mutable module-level state" in f.message
            for f in findings
        )

    def test_lambda_thread_target_flagged_named_nested_is_sanctioned(self):
        flagged = lint_source(
            "import threading\n"
            "def watch():\n"
            "    t = threading.Thread(target=lambda: 1)\n"
            "    t.start()\n",
            module="fixture",
        )
        assert any(
            f.rule == "engine-concurrency" and "thread target" in f.message
            for f in flagged
        )
        # the engine's watchdog shape: a named nested function target
        sanctioned = lint_source(
            "import threading\n"
            "def watch():\n"
            "    box = []\n"
            "    def target():\n"
            "        box.append(1)\n"
            "    t = threading.Thread(target=target)\n"
            "    t.start()\n",
            module="fixture",
        )
        assert of_rule(sanctioned, "engine-concurrency") == []

    def test_thread_target_mutating_globals_flagged(self, tmp_path):
        project_root = tmp_path / "t"
        make_tree(
            project_root,
            {
                "eng/w.py": (
                    "import threading\n"
                    "STATE = {}\n"
                    "def poke():\n"
                    "    STATE['x'] = 1\n"
                    "def watch():\n"
                    "    threading.Thread(target=poke).start()\n"
                ),
            },
        )
        findings = lint_paths([project_root])
        assert any(
            f.rule == "engine-concurrency" and "thread target" in f.message
            for f in findings
        )


# ---------------------------------------------------------------------------
# kernel-escape
# ---------------------------------------------------------------------------


class TestKernelEscape:
    def test_direct_internal_mutation_flagged(self):
        source = (
            "def corrupt(kernel):\n"
            "    kernel._slots[0] = {}\n"
        )
        findings = lint_source(source, module="fixture")
        assert rules_of(findings) == ["kernel-escape"]

    def test_renamed_kernel_caught_via_annotation(self):
        source = (
            "from repro.graphs.kernel import GraphKernel\n"
            "def corrupt(substrate: GraphKernel):\n"
            "    substrate._digest = 'forged'\n"
        )
        findings = lint_source(source, module="fixture")
        assert rules_of(findings) == ["kernel-escape"]

    def test_internal_attr_on_any_non_self_root_caught(self):
        # no kernel-named variable at all: the slot name itself is the tell
        source = (
            "def corrupt(g):\n"
            "    g.kernel._edges.pop(3)\n"
        )
        findings = lint_source(source, module="fixture")
        assert rules_of(findings) == ["kernel-escape"]

    def test_laundered_through_helper(self, tmp_path):
        project_root = tmp_path / "t"
        make_tree(
            project_root,
            {
                "g/surgery.py": (
                    "def _stitch(kernel, eid):\n"
                    "    kernel._edges.pop(eid)\n"
                    "def repair(kernel, eid):\n"
                    "    _stitch(kernel, eid)\n"
                ),
            },
        )
        findings = lint_paths([project_root])
        hits = of_rule(findings, "kernel-escape")
        assert any("_stitch" in f.message and "repair" in f.message for f in hits)

    def test_builder_self_state_is_not_flagged(self):
        # builders mutate their *own* _slots/_edges pre-freeze: never flagged
        source = (
            "class GraphBuilder:\n"
            "    def __init__(self):\n"
            "        self._slots = {}\n"
            "        self._edges = {}\n"
            "    def add(self, k, v):\n"
            "        self._slots[k] = v\n"
        )
        findings = lint_source(source, module="fixture")
        assert of_rule(findings, "kernel-escape") == []

    def test_kernel_module_itself_is_sanctioned(self):
        source = (
            "def freeze(kernel):\n"
            "    kernel._digest = 'sealed'\n"
        )
        findings = lint_source(source, module="repro.graphs.kernel")
        assert of_rule(findings, "kernel-escape") == []

    def test_setattr_forging_internal_slot(self):
        source = (
            "def forge(thing):\n"
            "    object.__setattr__(thing, '_digest', 'x')\n"
        )
        findings = lint_source(source, module="fixture")
        assert rules_of(findings) == ["kernel-escape"]


# ---------------------------------------------------------------------------
# suppression-hygiene
# ---------------------------------------------------------------------------


class TestSuppressionHygiene:
    def test_unused_noqa_flagged(self):
        findings = lint_source(
            "x = 1  # repro: noqa[determinism]\n", module="fixture"
        )
        assert rules_of(findings) == ["suppression-hygiene"]
        assert "unused suppression" in findings[0].message

    def test_used_noqa_not_flagged(self):
        findings = lint_source(
            "import random\nx = random.random()  # repro: noqa[determinism]\n",
            module="fixture",
        )
        assert of_rule(findings, "suppression-hygiene") == []

    def test_unknown_rule_id_in_noqa_flagged(self):
        findings = lint_source(
            "import random\nx = random.random()  # repro: noqa[determinsm]\n",
            module="fixture",
        )
        assert any(
            "unknown rule 'determinsm'" in f.message
            for f in of_rule(findings, "suppression-hygiene")
        )

    def test_hygiene_findings_cannot_be_noqa_silenced(self):
        findings = lint_source(
            "x = 1  # repro: noqa[determinism, suppression-hygiene]\n",
            module="fixture",
        )
        assert rules_of(findings) == ["suppression-hygiene"]

    def test_partial_select_never_reports_unused(self):
        findings = lint_source(
            "x = 1  # repro: noqa[determinism]\n",
            module="fixture",
            select=["exact-arith", "suppression-hygiene"],
        )
        assert findings == []

    def test_redundant_marker_on_config_listed_module(self):
        findings = lint_source(
            "# repro: randomized\nimport random\nx = random.random()\n",
            module="repro.local.randomized",
        )
        assert any(
            "redundant marker" in f.message
            for f in of_rule(findings, "suppression-hygiene")
        )

    def test_stale_marker_without_matching_effect(self):
        findings = lint_source(
            "# repro: randomized\nx = 1\n", module="fixture"
        )
        assert any(
            "stale marker" in f.message
            for f in of_rule(findings, "suppression-hygiene")
        )

    def test_live_marker_not_flagged(self):
        findings = lint_source(
            "# repro: randomized\nimport random\nx = random.random()\n",
            module="fixture",
        )
        assert of_rule(findings, "suppression-hygiene") == []
