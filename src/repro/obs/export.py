"""Exporters for traces and benchmark artifacts.

Three consumers, three formats (schemas documented in
``docs/observability.md``):

* **JSON trace document** (:func:`trace_document` / :func:`write_json`) —
  the whole span forest nested as a tree plus the metrics snapshot; what
  ``python -m repro trace ... --json PATH`` writes.
* **JSONL span log** (:func:`write_jsonl`) — one flat JSON object per span
  with ``id`` / ``parent`` links, convenient for grep/pandas-style
  processing of large traces.
* **Benchmark artifact** (:func:`write_bench_artifact`) — the
  ``BENCH_E*.json`` files persisted by ``benchmarks/conftest.py``: recorded
  experiment series rows, the lint-cleanliness header, and an optional
  trace profile.

Attribute values are rendered with ``default=str`` so exact ``Fraction``
weights and tuple node labels survive as readable strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import percentile_from_buckets

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "span_to_dict",
    "trace_document",
    "merge_metrics_snapshots",
    "merge_trace_documents",
    "write_json",
    "write_jsonl",
    "render_tree",
    "profile_rows",
    "document_profile",
    "render_profile",
    "count_spans",
    "write_bench_artifact",
]

TRACE_SCHEMA_VERSION = 1


def span_to_dict(span) -> dict:
    """One span (and recursively its children) as a JSON-able dict."""
    return {
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "self_time": span.self_time,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
        "children": [span_to_dict(c) for c in span.children],
    }


def trace_document(tracer, command: Optional[str] = None) -> dict:
    """The full JSON trace document for a finished tracer."""
    return {
        "version": TRACE_SCHEMA_VERSION,
        "command": command,
        "spans": [span_to_dict(s) for s in tracer.roots],
        "metrics": tracer.metrics.snapshot(),
    }


def _metric_key(row: dict) -> Tuple:
    return (row["name"], tuple(sorted(row.get("labels", {}).items())))


def merge_metrics_snapshots(snapshots) -> dict:
    """Combine several ``MetricsRegistry.snapshot()`` payloads into one.

    Counters and histogram counts/totals add; histogram min/max widen and
    log2 bucket counts add, from which the merged p50/p95 are recomputed
    (bucket addition is associative, so merge order does not matter);
    gauges keep the last written value in snapshot order.  Rows keep the
    snapshot sort order (name, then labels).
    """
    counters: Dict[Tuple, dict] = {}
    gauges: Dict[Tuple, dict] = {}
    histograms: Dict[Tuple, dict] = {}
    for snapshot in snapshots:
        for row in snapshot.get("counters", []):
            merged = counters.setdefault(_metric_key(row), {**row, "value": 0})
            merged["value"] += row["value"]
        for row in snapshot.get("gauges", []):
            gauges[_metric_key(row)] = dict(row)
        for row in snapshot.get("histograms", []):
            merged = histograms.get(_metric_key(row))
            if merged is None:
                merged = dict(row)
                merged["buckets"] = dict(row.get("buckets", {}))
                histograms[_metric_key(row)] = merged
                continue
            merged["count"] += row["count"]
            merged["total"] += row["total"]
            for bound, pick in (("min", min), ("max", max)):
                values = [v for v in (merged[bound], row[bound]) if v is not None]
                merged[bound] = pick(values) if values else None
            for key, bucket_count in row.get("buckets", {}).items():
                merged["buckets"][key] = merged["buckets"].get(key, 0) + bucket_count
            merged["mean"] = merged["total"] / merged["count"] if merged["count"] else 0
    for merged in histograms.values():
        for q, field in ((0.50, "p50"), (0.95, "p95")):
            merged[field] = percentile_from_buckets(
                merged.get("buckets", {}),
                merged["count"],
                q,
                lo=merged["min"],
                hi=merged["max"],
            )
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
    }


def merge_trace_documents(
    documents, command: Optional[str] = None, extra: Optional[dict] = None
) -> dict:
    """Merge several trace documents (one per worker) into one.

    Span forests are concatenated in document order with each root annotated
    by its source document index (``merged_from`` attribute); metrics are
    combined with :func:`merge_metrics_snapshots`.  ``extra`` entries (e.g.
    cache statistics) are copied onto the top level of the merged document.
    """
    documents = list(documents)
    spans: List[dict] = []
    for index, doc in enumerate(documents):
        for root in doc.get("spans", []):
            merged_root = dict(root)
            merged_root["attrs"] = dict(root.get("attrs", {}), merged_from=index)
            spans.append(merged_root)
    merged = {
        "version": TRACE_SCHEMA_VERSION,
        "command": command,
        "merged_from": len(documents),
        "spans": spans,
        "metrics": merge_metrics_snapshots(
            doc.get("metrics", {}) for doc in documents
        ),
    }
    if extra:
        merged.update(extra)
    return merged


def write_json(tracer, path, command: Optional[str] = None) -> Path:
    """Write the JSON trace document to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(trace_document(tracer, command=command), indent=2, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def _flat_spans(tracer) -> Iterator[Tuple[int, Optional[int], object]]:
    """Depth-first ``(id, parent_id, span)`` triples; ids are DFS order."""
    next_id = 0
    stack = [(None, s) for s in reversed(tracer.roots)]
    while stack:
        parent_id, span = stack.pop()
        span_id = next_id
        next_id += 1
        yield span_id, parent_id, span
        stack.extend((span_id, c) for c in reversed(span.children))


def write_jsonl(tracer, path) -> Path:
    """Write one JSON object per span (``id``/``parent`` linked) to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for span_id, parent_id, span in _flat_spans(tracer):
            fh.write(
                json.dumps(
                    {
                        "id": span_id,
                        "parent": parent_id,
                        "name": span.name,
                        "start": span.start,
                        "duration": span.duration,
                        "attrs": dict(span.attrs),
                        "counters": dict(span.counters),
                    },
                    default=str,
                )
                + "\n"
            )
    return path


def _format_attrs(span) -> str:
    parts = [f"{k}={v}" for k, v in span.attrs.items()]
    parts += [f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}" for k, v in span.counters.items()]
    return " ".join(str(p) for p in parts)


def render_tree(tracer, max_depth: Optional[int] = None) -> str:
    """Indented text rendering of the span forest (durations in ms)."""
    lines: List[str] = []

    def visit(span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        attrs = _format_attrs(span)
        suffix = f"  [{attrs}]" if attrs else ""
        hidden = ""
        if max_depth is not None and depth == max_depth and span.children:
            hidden = f"  (+{sum(1 for _ in _descendants(span))} nested spans)"
        lines.append(f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f}ms{suffix}{hidden}")
        if max_depth is None or depth < max_depth:
            for child in span.children:
                visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    return "\n".join(lines)


def _descendants(span) -> Iterator[object]:
    for child in span.children:
        yield child
        yield from _descendants(child)


def profile_rows(tracer) -> List[dict]:
    """Aggregate spans by name: calls, total/self/mean time, hottest first.

    "Hottest" orders by *self* time — time spent in a span excluding its
    children — so a parent that merely contains expensive work does not
    crowd out the work itself.
    """
    agg: Dict[str, dict] = {}
    for span in tracer.iter_spans():
        row = agg.setdefault(
            span.name, {"name": span.name, "calls": 0, "total": 0.0, "self": 0.0}
        )
        row["calls"] += 1
        row["total"] += span.duration
        row["self"] += span.self_time
    rows = sorted(agg.values(), key=lambda r: (-r["self"], -r["total"], r["name"]))
    for row in rows:
        row["mean"] = row["total"] / row["calls"] if row["calls"] else 0.0
    return rows


def document_profile(*documents) -> List[dict]:
    """:func:`profile_rows` over serialized trace documents instead of a
    live tracer: aggregates the nested span dicts of every document passed,
    hottest self-time first.  Used by ``repro bench`` to attribute a wall
    time regression to span names without keeping tracers alive."""
    agg: Dict[str, dict] = {}
    stack: List[dict] = []
    for doc in documents:
        stack.extend(doc.get("spans", []))
    while stack:
        span = stack.pop()
        row = agg.setdefault(
            span["name"], {"name": span["name"], "calls": 0, "total": 0.0, "self": 0.0}
        )
        row["calls"] += 1
        row["total"] += span.get("duration", 0.0) or 0.0
        row["self"] += span.get("self_time", 0.0) or 0.0
        stack.extend(span.get("children", []))
    rows = sorted(agg.values(), key=lambda r: (-r["self"], -r["total"], r["name"]))
    for row in rows:
        row["mean"] = row["total"] / row["calls"] if row["calls"] else 0.0
    return rows


def render_profile(rows: List[dict], top: int = 10) -> str:
    """Text table of the top-``top`` hottest span names."""
    lines = [f"{'span':<28} {'calls':>7} {'self ms':>10} {'total ms':>10} {'mean ms':>10}"]
    for row in rows[:top]:
        lines.append(
            f"{row['name']:<28} {row['calls']:>7} {row['self'] * 1e3:>10.3f} "
            f"{row['total'] * 1e3:>10.3f} {row['mean'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def count_spans(tracer, name: str) -> int:
    """How many recorded spans carry ``name``."""
    return sum(1 for s in tracer.iter_spans() if s.name == name)


def write_bench_artifact(
    path,
    experiment_id: str,
    series: List[dict],
    lint: Optional[dict] = None,
    profile: Optional[List[dict]] = None,
) -> Path:
    """Persist one experiment's recorded series as a ``BENCH_E*.json`` file.

    ``series`` is a list of ``{"experiment": <full name>, "rows": [...]}``
    groups (several experiment tables can share an id like ``E1``); ``lint``
    is the lint-cleanliness header of the run; ``profile`` an optional
    span-name profile when the bench session ran under a tracer.

    Keys are sorted so re-running an unchanged benchmark reproduces the
    committed artifact byte for byte.
    """
    path = Path(path)
    document = {
        "version": TRACE_SCHEMA_VERSION,
        "experiment_id": experiment_id,
        "series": series,
        "lint": lint,
        "profile": profile,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path
