"""Port numbering <-> edge colouring conversions (paper, Figure 2).

The paper treats PO-graphs as edge-coloured digraphs, which is equivalent to
the traditional port-numbering definition:

* **PO1 -> PO2** (:func:`po_from_port_numbering`): a port-numbered, oriented
  simple graph becomes an edge-coloured digraph by colouring each arc
  ``(u, v)`` with the pair ``(i, j)`` where ``v`` is the ``i``-th neighbour of
  ``u`` and ``u`` is the ``j``-th neighbour of ``v``.
* **PO2 -> PO1** (:func:`port_numbering_from_po`): an edge-coloured digraph
  yields a port numbering by ordering, at every node, first the outgoing arcs
  by colour and then the incoming arcs by colour.

The module also provides :func:`po_double_from_ec`, the input transformation
of the EC <= PO simulation (paper, Section 5.1 and Figure 8): every undirected
colour-``c`` edge ``{u, v}`` of an EC-graph is interpreted as the two directed
arcs ``(u, v)`` and ``(v, u)`` of colour ``c``; an EC loop becomes a single
directed loop.  Degrees exactly double (EC loops count +1, PO loops +2).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from .digraph import POGraph
from .kernel import GraphBuilder
from .multigraph import ECGraph

Node = Hashable

__all__ = [
    "po_from_port_numbering",
    "port_numbering_from_po",
    "po_double_from_ec",
]


def po_from_port_numbering(
    ports: Dict[Node, List[Node]],
    orientation: Set[Tuple[Node, Node]],
) -> POGraph:
    """Build a PO-graph from a port numbering and an orientation (PO1 -> PO2).

    Parameters
    ----------
    ports:
        For each node, the ordered list of its neighbours; the ``i``-th entry
        (1-based in the paper, 0-based here) is the neighbour behind port
        ``i``.  The numbering must be symmetric as a graph: ``v in ports[u]``
        iff ``u in ports[v]``.
    orientation:
        A set of ordered pairs ``(u, v)``, one per undirected edge, giving the
        direction of each edge.

    Returns
    -------
    POGraph
        The edge-coloured digraph in which the arc for edge ``(u, v)``
        carries the colour ``(i, j)``: ``v`` is behind port ``i`` of ``u`` and
        ``u`` behind port ``j`` of ``v`` (ports reported 1-based, as in
        Figure 2a of the paper).
    """
    g = POGraph()
    for v in ports:
        g.add_node(v)
    port_of: Dict[Tuple[Node, Node], int] = {}
    for u, nbrs in ports.items():
        for i, w in enumerate(nbrs, start=1):
            if (u, w) in port_of:
                raise ValueError(f"duplicate neighbour {w!r} in port list of {u!r}")
            port_of[(u, w)] = i
    for (u, v) in orientation:
        if (u, v) not in port_of or (v, u) not in port_of:
            raise ValueError(f"oriented edge ({u!r}, {v!r}) missing from port lists")
        color = (port_of[(u, v)], port_of[(v, u)])
        g.add_edge(u, v, color)
    return g


def port_numbering_from_po(g: POGraph) -> Dict[Node, List[Tuple[int, str]]]:
    """Derive a port numbering from a PO-graph (PO2 -> PO1, Figure 2b).

    For each node the incident arc slots are ordered: first all outgoing arcs
    by colour, then all incoming arcs by colour.  The returned mapping sends
    each node to its ordered list of ``(edge_id, role)`` pairs where ``role``
    is ``"out"`` or ``"in"``; the list position (0-based) is the port number.
    A directed loop appears twice: once as an out-port, once as an in-port.
    """
    numbering: Dict[Node, List[Tuple[int, str]]] = {}
    for v in g.nodes():
        slots: List[Tuple[int, str]] = []
        for e in g.out_edges(v):
            slots.append((e.eid, "out"))
        for e in g.in_edges(v):
            slots.append((e.eid, "in"))
        numbering[v] = slots
    return numbering


def po_double_from_ec(g: ECGraph) -> POGraph:
    """Interpret an EC-graph as a PO-graph by doubling edges (Section 5.1).

    Every undirected colour-``c`` edge ``{u, v}`` becomes the two arcs
    ``(u, v)`` and ``(v, u)``, both of colour ``c``.  An EC loop of colour
    ``c`` at ``v`` becomes one directed loop at ``v`` of colour ``c``.  The
    PO degree of every node is exactly twice its EC degree, so an EC-graph of
    maximum degree ``D/2`` produces a PO-graph of maximum degree ``D``.

    The arc ids record provenance: the returned graph's arcs can be matched
    back to original edge ids via :func:`ec_edge_of_arc` conventions — arc
    ``2 * eid`` runs ``u -> v`` and arc ``2 * eid + 1`` runs ``v -> u`` for a
    non-loop edge ``eid``; a loop ``eid`` maps to the single arc ``2 * eid``.
    """
    builder = GraphBuilder(directed=True)
    for v in g.nodes():
        builder.add_node(v)
    for e in g.edges():
        if e.is_loop:
            builder.add_edge(e.u, e.u, e.color, eid=2 * e.eid)
        else:
            builder.add_edge(e.u, e.v, e.color, eid=2 * e.eid)
            builder.add_edge(e.v, e.u, e.color, eid=2 * e.eid + 1)
    return POGraph._wrap(builder)
