"""Render lint findings for terminals, CI and machine consumers."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import PurePath
from typing import Dict, List, Sequence

from .engine import Finding

__all__ = ["render_text", "render_json", "render_sarif", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, object]:
    """A JSON-ready summary: clean flag, totals, per-rule counts, findings."""
    per_rule = Counter(f.rule for f in findings)
    return {
        "clean": not findings,
        "total": len(findings),
        "by_rule": dict(sorted(per_rule.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: [rule] message`` line per finding plus a tally."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        per_rule = Counter(f.rule for f in findings)
        tally = ", ".join(f"{rule}: {n}" for rule, n in sorted(per_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({tally})")
    else:
        lines.append("model contracts: clean (0 findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """The :func:`summarize` dict as JSON text."""
    return json.dumps(summarize(findings), indent=indent)


def _rule_descriptions() -> Dict[str, str]:
    """Rule id -> first docstring line of the implementing module."""
    from .rules import RULE_MODULES

    out: Dict[str, str] = {}
    for rule_id, module in RULE_MODULES.items():
        doc = (module.__doc__ or "").strip().splitlines()
        out[rule_id] = doc[0].strip() if doc else rule_id
    out["syntax"] = "``syntax`` — the file could not be parsed."
    return out


def render_sarif(findings: Sequence[Finding], indent: int = 2) -> str:
    """The findings as a SARIF 2.1.0 log (GitHub code-scanning format).

    Every known rule is declared in the driver (stable tool metadata);
    results reference rules by id.  Paths are emitted POSIX-style relative
    URIs, as code scanning expects.
    """
    descriptions = _rule_descriptions()
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": PurePath(f.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
        }
        for f in findings
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro/docs/static_analysis.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": text},
                            }
                            for rule_id, text in sorted(descriptions.items())
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=indent)
