"""Conformance suite for sweep executor backends (repro.engine.executors).

Every backend — ``inline``, ``process``, ``socket`` — must satisfy the same
contract: merged sweep rows serialise byte-identically to the serial
baseline, every fault kind the backend's capabilities declare is survived
with byte-identical rows (the PR 5 chaos matrix), a torn result store
resumes cleanly, and the progress stream's ``final`` event agrees with the
persisted summary.  The suite is parameterized so a fourth backend only
needs a new entry in ``BACKEND_PARAMS``.
"""

from __future__ import annotations

import dataclasses
import json
import socket as socket_mod

import pytest

from repro.engine import Fault, FaultPlan, run_sweep, smoke_grid
from repro.engine.executors import (
    BACKENDS,
    DEFAULT_MEMORY_BUDGET,
    ExecutionOptions,
    InlineExecutor,
    ProcessExecutor,
    ShardServer,
    SocketExecutor,
    SweepExecutor,
    as_executor,
    batch_cells_by_volume,
    estimated_ball_volume,
    estimated_cell_volume,
    parse_hosts,
)
from repro.engine.faults import FAULT_KINDS

#: the conformance matrix: how each backend is driven through run_sweep
BACKEND_PARAMS = {
    "inline": {"backend": "inline", "workers": 1},
    "process": {"backend": "process", "workers": 2},
    "socket": {"backend": "socket", "workers": 2},
}


def rows_bytes(rows) -> str:
    return json.dumps(list(rows), sort_keys=True, default=str)


@pytest.fixture(scope="module")
def serial_baseline():
    """The fault-free serial smoke sweep every backend must reproduce."""
    result = run_sweep(smoke_grid(), workers=0, use_cache=False)
    return rows_bytes(result.rows), [row["key"] for row in result.rows]


@pytest.fixture(params=sorted(BACKEND_PARAMS))
def backend_opts(request):
    return dict(BACKEND_PARAMS[request.param])


class TestByteIdentity:
    def test_rows_byte_identical_to_serial(self, backend_opts, serial_baseline):
        base, _ = serial_baseline
        result = run_sweep(smoke_grid(), use_cache=False, **backend_opts)
        assert result.backend == backend_opts["backend"]
        assert rows_bytes(result.rows) == base

    def test_rows_identical_with_store_and_cache(
        self, backend_opts, serial_baseline, tmp_path
    ):
        base, _ = serial_baseline
        result = run_sweep(
            smoke_grid(),
            out_dir=tmp_path / "out",
            cache_dir=tmp_path / "cache",
            **backend_opts,
        )
        assert rows_bytes(result.rows) == base
        summary = json.loads((tmp_path / "out" / "summary.json").read_text())
        assert summary["cells"] == len(result.rows)


class TestChaosMatrix:
    """The PR 5 chaos contract, now parameterized over every backend."""

    def test_all_declared_fault_kinds_in_one_sweep(
        self, backend_opts, serial_baseline, tmp_path
    ):
        """One sweep hit by every fault kind the backend declares survivable."""
        base, keys = serial_baseline
        declared = as_executor(**backend_opts).capabilities.fault_kinds
        assert declared == frozenset(FAULT_KINDS)
        plan = FaultPlan(
            faults=(
                Fault(kind="raise-worker", cell=keys[0]),
                Fault(kind="stall-cell", cell=keys[1], seconds=0.5, attempt=0),
                Fault(kind="kill-worker", cell=keys[2]),
                Fault(kind="truncate-shard", cell=keys[3], offset=-5),
                Fault(kind="corrupt-cache", offset=0, length=6),
                Fault(kind="cache-io-error", op="read"),
            )
        )
        result = run_sweep(
            smoke_grid(),
            out_dir=tmp_path / "out",
            cache_dir=tmp_path / "cache",
            faults=plan,
            cell_timeout=0.2,
            retries=1,
            **backend_opts,
        )
        assert rows_bytes(result.rows) == base
        assert result.recovery["restarts"] >= 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sampled_fault_matrix(self, backend_opts, serial_baseline, tmp_path, seed):
        base, keys = serial_baseline
        plan = FaultPlan.sample(keys, seed=seed)
        result = run_sweep(
            smoke_grid(),
            out_dir=tmp_path / f"out{seed}",
            cache_dir=tmp_path / f"cache{seed}",
            faults=plan,
            **backend_opts,
        )
        assert rows_bytes(result.rows) == base


class TestTornStoreResume:
    def test_torn_shard_line_recomputed_on_resume(
        self, backend_opts, serial_baseline, tmp_path
    ):
        base, _ = serial_baseline
        out = tmp_path / "out"
        run_sweep(smoke_grid(), out_dir=out, use_cache=False, **backend_opts)
        shard = next(p for p in sorted(out.glob("shard-*.jsonl")) if p.read_text())
        lines = shard.read_text().splitlines()
        # tear the final row mid-write, as a killed worker would leave it
        shard.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        result = run_sweep(
            smoke_grid(), out_dir=out, use_cache=False, resume=True, **backend_opts
        )
        assert rows_bytes(result.rows) == base
        assert result.resumed == len(result.rows) - 1


class TestProgressConformance:
    def test_final_event_matches_summary(self, backend_opts, tmp_path):
        from repro.obs.progress import ProgressEmitter, read_progress_events

        out = tmp_path / "out"
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0)
        result = run_sweep(
            smoke_grid(), out_dir=out, use_cache=False, progress=emitter, **backend_opts
        )
        events = read_progress_events(path)
        assert events[0]["event"] == "start"
        final = events[-1]
        summary = json.loads((out / "summary.json").read_text())
        assert final["event"] == "final"
        assert final["done"] == summary["cells"] == len(result.rows)
        assert final["pending"] == 0 and final["failed"] == 0


class TestRegistry:
    def test_backend_registry_is_exactly_the_shipped_set(self):
        assert set(BACKENDS) == {"inline", "process", "socket"}
        assert set(BACKEND_PARAMS) == set(BACKENDS), (
            "a new backend must join the conformance matrix"
        )

    def test_default_resolution_keeps_historical_workers_behaviour(self):
        assert isinstance(as_executor(None, workers=0), InlineExecutor)
        assert isinstance(as_executor(None, workers=1), InlineExecutor)
        assert isinstance(as_executor(None, workers=2), ProcessExecutor)
        assert isinstance(as_executor("socket", workers=2), SocketExecutor)

    def test_executor_instances_pass_through(self):
        executor = InlineExecutor()
        assert as_executor(executor) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            as_executor("carrier-pigeon")

    def test_socket_only_options_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="hosts only apply"):
            as_executor("inline", hosts=[("h", 1)])
        with pytest.raises(ValueError, match="memory_budget only applies"):
            as_executor("process", workers=2, memory_budget=10)


class TestCapabilities:
    def test_inline_capabilities(self):
        caps = InlineExecutor().capabilities
        assert not caps.parallel and not caps.separate_process
        assert caps.supports_on_row

    def test_process_capabilities(self):
        caps = ProcessExecutor(workers=2).capabilities
        assert caps.parallel and caps.separate_process
        assert not caps.supports_on_row

    def test_socket_loopback_never_arms_real_sigkill(self):
        """Self-hosted loopback servers share our process: kill-worker must
        degrade to a raised InjectedWorkerError, not a real SIGKILL."""
        assert not SocketExecutor(workers=2).capabilities.separate_process

    def test_socket_external_hosts_are_separate_processes(self):
        executor = SocketExecutor(hosts=[("127.0.0.1", 7641), ("127.0.0.1", 7642)])
        assert executor.capabilities.separate_process
        assert executor.width == 2

    def test_base_executor_is_the_serial_contract(self):
        caps = SweepExecutor.capabilities
        assert not caps.parallel and caps.fault_kinds == frozenset(FAULT_KINDS)


class TestExecutionOptions:
    def test_defaults_validate(self):
        options = ExecutionOptions()
        assert options.workers == 1 and options.backend is None
        kwargs = options.engine_kwargs()
        assert kwargs["workers"] == 1 and "hosts" not in kwargs

    @pytest.mark.parametrize(
        ("field", "value", "message"),
        [
            ("workers", 0, "workers must be >= 1"),
            ("backend", "smoke-signals", "unknown backend"),
            ("cell_timeout", -1.0, "cell_timeout must be positive"),
            ("retries", -1, "retries must be >= 0"),
            ("max_restarts", -1, "max_restarts must be >= 0"),
            ("hosts", (("h", 1),), "hosts only apply to the socket backend"),
        ],
    )
    def test_bad_values_rejected(self, field, value, message):
        with pytest.raises(ValueError, match=message):
            ExecutionOptions(**{field: value})

    def test_hosts_allowed_on_socket(self):
        options = ExecutionOptions(backend="socket", hosts=(("h", 7641),))
        assert options.engine_kwargs()["hosts"] == [("h", 7641)]

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionOptions().workers = 4


class TestVolumeBudgeting:
    def test_ball_volume_closed_form(self):
        # 1 + Δ·Σ_{r<Δ-2} (Δ-1)^r, the Section 4 witness-ball bound
        assert estimated_ball_volume(1) == 1
        assert estimated_ball_volume(2) == 1  # radius 0: the root alone
        assert estimated_ball_volume(3) == 1 + 3 * 1
        assert estimated_ball_volume(4) == 1 + 4 * (1 + 3)
        assert estimated_ball_volume(8) == 1 + 8 * sum(7**r for r in range(6))

    def test_ball_volume_monotone_in_delta(self):
        volumes = [estimated_ball_volume(d) for d in range(2, 12)]
        assert volumes == sorted(volumes)

    def test_cell_volume_counts_both_witness_balls(self):
        assert estimated_cell_volume({"delta": 4}) == 2 * estimated_ball_volume(4)

    def test_batching_preserves_order_and_respects_budget(self):
        cells = [{"key": f"c{i}", "delta": 3} for i in range(5)]
        cost = estimated_cell_volume(cells[0])
        batches = batch_cells_by_volume(cells, budget=2 * cost)
        assert [len(batch) for batch in batches] == [2, 2, 1]
        flattened = [cell["key"] for batch in batches for cell in batch]
        assert flattened == [cell["key"] for cell in cells]

    def test_oversized_cell_still_ships_alone(self):
        cells = [{"key": "big", "delta": 8}, {"key": "small", "delta": 3}]
        batches = batch_cells_by_volume(cells, budget=1)
        assert [len(batch) for batch in batches] == [1, 1]

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="memory_budget must be positive"):
            batch_cells_by_volume([{"delta": 3}], budget=0)

    def test_default_budget_keeps_smoke_shard_in_one_request(self):
        cells = [{"delta": 3}, {"delta": 4}, {"delta": 3}, {"delta": 4}]
        assert len(batch_cells_by_volume(cells, DEFAULT_MEMORY_BUDGET)) == 1

    def test_default_budget_isolates_e1_largest_delta(self):
        # a Δ=8 cell is ~3·10⁵ resident nodes: it must travel alone
        cells = [{"delta": 8}, {"delta": 8}]
        assert len(batch_cells_by_volume(cells, DEFAULT_MEMORY_BUDGET)) == 2


class TestParseHosts:
    def test_string_tuple_and_none_forms(self):
        assert parse_hosts(None) == []
        assert parse_hosts("h1:7641, h2:7642") == [("h1", 7641), ("h2", 7642)]
        assert parse_hosts([("h1", 7641)]) == [("h1", 7641)]

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="bad host spec"):
            parse_hosts("no-port")
        with pytest.raises(ValueError, match="bad port"):
            parse_hosts("h:seven")


class TestShardServerProtocol:
    def test_ping_and_max_requests(self):
        server = ShardServer()
        server.start()
        try:
            host, port = server.address
            with socket_mod.create_connection((host, port), timeout=5) as conn:
                fh = conn.makefile("rw", encoding="utf-8", newline="\n")
                fh.write(json.dumps({"op": "ping"}) + "\n")
                fh.flush()
                reply = json.loads(fh.readline())
            assert reply == {"ok": True, "result": "pong"}
        finally:
            server.stop()

    def test_external_host_round_trip(self, serial_baseline):
        """A sweep dispatched to explicitly-addressed servers — the two-host
        topology CI runs across real processes — stays byte-identical."""
        base, _ = serial_baseline
        servers = [ShardServer(), ShardServer()]
        for server in servers:
            server.start()
        try:
            hosts = [server.address for server in servers]
            result = run_sweep(
                smoke_grid(), backend="socket", hosts=hosts, use_cache=False
            )
            assert rows_bytes(result.rows) == base
            assert sum(server.requests_served for server in servers) >= 2
        finally:
            for server in servers:
                server.stop()
