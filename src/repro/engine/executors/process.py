"""The process-pool backend: the original spawn pool as a thin adapter.

A round's shards map over a ``concurrent.futures.ProcessPoolExecutor``
built on the **spawn** context: workers import the package fresh, so no
installed tracer, cache, or other interpreter state leaks across the
process boundary.  Because shards really do live in their own processes,
this is the one shipped backend whose ``kill-worker`` faults arm the real
``SIGKILL`` trigger (``separate_process=True``) — a dead worker surfaces
as ``BrokenProcessPool`` on every future the broken pool still owed, which
:meth:`ProcessExecutor.is_worker_loss` maps to the driver's reassignment
policy.

This module is a sanctioned worker spawner (``LintConfig.worker_modules``).
"""

from __future__ import annotations

import multiprocessing
from typing import List, Tuple

from ..faults import InjectedWorkerError
from .base import ExecutorCapabilities, ExecutorContext, ShardFailure, ShardOutcome, SweepExecutor
from .shard import run_shard

__all__ = ["ProcessExecutor"]


class ProcessExecutor(SweepExecutor):
    """Ship each shard to a spawned pool worker."""

    name = "process"
    capabilities = ExecutorCapabilities(
        parallel=True,
        separate_process=True,
        supports_on_row=False,
    )

    def __init__(self, workers: int = 2):
        #: pool width; an explicitly requested process backend always gets
        #: a real pool, so fewer than two workers still spawn two
        self.width = max(2, workers)

    def run_round(
        self, payloads: List[dict], ctx: ExecutorContext
    ) -> Tuple[List[ShardOutcome], List[ShardFailure]]:
        outcomes: List[ShardOutcome] = []
        failures: List[ShardFailure] = []
        if not payloads:
            return outcomes, failures
        from concurrent.futures import ProcessPoolExecutor

        # spawn, not fork: workers must re-import the package so no
        # half-initialised interpreter state (or installed caches/tracers)
        # leaks across the process boundary
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(self.width, len(payloads)), mp_context=context
        ) as pool:
            futures = [(pool.submit(run_shard, payload), payload) for payload in payloads]
            for future, payload in futures:
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - triaged by the driver
                    failures.append((payload, exc))
        return outcomes, failures

    def is_worker_loss(self, exc: BaseException) -> bool:
        from concurrent.futures.process import BrokenProcessPool

        return isinstance(exc, (BrokenProcessPool, InjectedWorkerError))
