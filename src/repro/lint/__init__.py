"""Model-contract static analysis for the reproduction (``repro.lint``).

The repository's correctness story is "everything verified, nothing
trusted" (DESIGN.md): adversary invariants, covering maps and FM maximality
are machine-checked.  The *model contracts* the algorithms live under —
anonymity, determinism, exact arithmetic, frozen views — were previously
policed only dynamically, when a test happened to exercise the right lift.
This package turns them into a two-layer static pass.

Per-line module rules:

* ``locality``        — EC/PO/OI algorithm classes must not read
                        ``ctx.node`` / ``ctx.identifier`` or reach into the
                        runtime/graph machinery from node-local code;
* ``determinism``     — no ambient randomness (global ``random.*``,
                        ``numpy.random``, ``time``, ``os.urandom``,
                        ``secrets``) outside explicitly randomized modules;
* ``exact-arith``     — no float literals, ``float()`` coercions or true
                        division in the exact-arithmetic core
                        (``repro.matching`` / ``repro.core`` minus the
                        explicitly-floating LP module);
* ``frozen-mutation`` — no in-place mutation of :class:`NodeContext`,
                        view trees or neighbourhood balls.

Interprocedural project rules, built on a whole-program call graph
(:mod:`repro.lint.callgraph`) and transitive effect inference
(:mod:`repro.lint.effects`):

* ``effect-escape``       — no path from model code into clock / entropy /
                            worker-spawn / float / global-state effects
                            that does not cross a declared exemption
                            boundary — the config allowlists, verified;
* ``engine-concurrency``  — nothing unpicklable submitted to the worker
                            pool (however many helper layers deep), no
                            worker entry point touching module-global
                            state, no unsanctioned thread targets;
* ``kernel-escape``       — no post-freeze mutation of
                            :class:`GraphKernel` internals anywhere
                            outside the kernel module itself;
* ``suppression-hygiene`` — no stale/unused ``# repro: noqa`` or marker
                            comments.

Findings are suppressed with ``# repro: noqa[rule-id]`` on any physical
line of the offending statement (bare ``# repro: noqa`` silences every
rule); a module declares a sanctioned effect with a marker line
(``# repro: randomized|clock|workers|state``).  Accepted findings live in
a committed baseline with ratchet semantics (:mod:`repro.lint.baseline`).
See ``docs/static_analysis.md`` for rule-by-rule justification and the
runtime counterpart, the locality sanitizer in :mod:`repro.local.sanitize`.
"""

from __future__ import annotations

from .baseline import load_baseline, ratchet, write_baseline
from .engine import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    ModuleUnderLint,
    ProjectUnderLint,
    lint_paths,
    lint_source,
    module_name_for,
)
from .reporters import render_json, render_sarif, render_text, summarize
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "ModuleUnderLint",
    "ProjectUnderLint",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "ratchet",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize",
    "write_baseline",
]
