"""The simulation OI <= ID (paper, Section 5.4, Lemmas 5-7, Corollary 9).

The paper's subtlest step: unique identifiers are unbounded, so the
Naor-Stockmeyer machinery does not apply to the FM outputs directly.  The
resolution, reproduced executably here:

* **Step (i)** — the *saturation indicator* ``A*`` (does the algorithm
  saturate the centre node?) has finitely many outputs, so Ramsey extraction
  (:mod:`repro.core.ramsey`) yields an identifier set ``I`` on which ``A*``
  is order-invariant over any chosen family of loopy neighbourhood
  templates (Lemma 5); on loopy neighbourhoods order-invariance plus
  maximality force ``A`` to saturate the centre under every order-respecting
  assignment from ``I`` (Lemma 6).
* **Step (ii)** — passing to a sparse subset ``J`` (every ``(m+1)``-th
  identifier of ``I``), the full algorithm ``A`` becomes order-invariant on
  loopy neighbourhoods: changing one node's identifier inside ``J`` cannot
  change the output, because any change would start a disagreement between
  two *fully saturated* FMs that the propagation principle (Fact 8) must
  carry beyond the algorithm's horizon (Lemma 7).

:class:`OIFromID` packages the result: an OI-algorithm that assigns
identifiers from ``J`` canonically along the given order and runs the
ID-algorithm — Corollary 9's ``A_OI``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..graphs.cover import TruncatedCoverPO, universal_cover_po
from ..graphs.digraph import POGraph
from ..local.algorithm import DistributedAlgorithm
from ..local.identifiers import assign_ids_respecting_order, order_respecting_assignments
from ..local.runtime import IDNetwork, run_rounds
from .canonical_order import tree_sort_key
from .ramsey import order_invariant_subset
from .sim_po_oi import OIAlgorithm, cover_words

Node = Hashable
Slot = Tuple[str, Any]

__all__ = [
    "LoopyNeighbourhood",
    "loopy_oi_neighbourhood",
    "ball_size_bound",
    "evaluate_id_on_neighbourhood",
    "saturation_of_root",
    "lemma6_check",
    "lemma7_check",
    "extract_order_invariant_ids",
    "OIFromID",
]

ONE = Fraction(1)


@dataclass
class LoopyNeighbourhood:
    """A loopy OI-neighbourhood ``tau_t(UG, <, v)`` (paper, Section 5.4).

    Attributes
    ----------
    base_graph:
        The loopy PO-graph ``G``.
    base_node:
        The node ``v`` whose cover neighbourhood this is.
    t:
        The radius.
    cover:
        The truncated universal cover around ``v``.
    ordered_nodes:
        The cover's nodes in the canonical (Appendix A) linear order.
    """

    base_graph: POGraph
    base_node: Node
    t: int
    cover: TruncatedCoverPO
    ordered_nodes: List[Node]

    @property
    def root(self) -> Node:
        """The centre of the neighbourhood (the empty walk)."""
        return self.cover.root

    @property
    def size(self) -> int:
        """Number of nodes in the neighbourhood."""
        return len(self.ordered_nodes)

    def undirected(self) -> "nx.Graph":
        """The neighbourhood as a simple undirected graph on cover labels."""
        out = nx.Graph()
        out.add_nodes_from(self.cover.tree.nodes())
        for e in self.cover.tree.edges():
            out.add_edge(e.tail, e.head)
        return out


def loopy_oi_neighbourhood(g: POGraph, v: Node, t: int) -> LoopyNeighbourhood:
    """Build ``tau_t(UG, <, v)`` with the canonical order inherited from ``T``."""
    cover = universal_cover_po(g, v, t)
    words = cover_words(g, cover)
    ordered = sorted(cover.tree.nodes(), key=lambda n: tree_sort_key(words[n]))
    return LoopyNeighbourhood(
        base_graph=g, base_node=v, t=t, cover=cover, ordered_nodes=ordered
    )


def ball_size_bound(delta: int, radius: int) -> int:
    """Upper bound on nodes in a radius-``radius`` ball of maximum degree ``delta``.

    Used for the sparsity parameter ``m`` of Section 5.4, step (ii): ``J``
    keeps every ``(m+1)``-th identifier of ``I`` where ``m`` bounds a
    ``(2t+1)``-neighbourhood.
    """
    if radius == 0 or delta == 0:
        return 1
    if delta == 1:
        return 2
    # 1 + delta * sum_{i<radius} (delta-1)^i
    total = 1
    frontier = delta
    for _ in range(radius):
        total += frontier
        frontier *= delta - 1
    return total


def evaluate_id_on_neighbourhood(
    algorithm: DistributedAlgorithm,
    nbhd: LoopyNeighbourhood,
    phi: Dict[Node, int],
    globals_: Optional[Dict[str, Any]] = None,
) -> Dict[Node, Optional[Dict[Node, Fraction]]]:
    """Run an ID-model state machine on ``phi(tau)`` for ``t`` rounds.

    Returns, per cover node, the announced/snapshotted output translated
    back from identifiers to cover labels (``{neighbour label: weight}``);
    only the *root's* entry is guaranteed meaningful — by locality it equals
    the algorithm's output on any graph extending the neighbourhood.
    """
    if algorithm.model != "ID":
        raise ValueError("expected an ID-model algorithm")
    tree = nbhd.undirected()
    relabelled = nx.relabel_nodes(tree, phi, copy=True)
    inverse = {i: v for v, i in phi.items()}
    network = IDNetwork(relabelled, globals_=globals_ or {})
    # t-time = t - 1 message rounds (paper tau_t convention; see sim_po_oi)
    result = run_rounds(network, algorithm, rounds=max(nbhd.t - 1, 0))
    translated: Dict[Node, Optional[Dict[Node, Fraction]]] = {}
    for ident, out in result.outputs.items():
        label = inverse[ident]
        if out is None:
            translated[label] = None
        else:
            translated[label] = {inverse[nbr]: Fraction(w) for nbr, w in out.items()}
    return translated


def saturation_of_root(
    nbhd: LoopyNeighbourhood,
    outputs: Dict[Node, Optional[Dict[Node, Fraction]]],
) -> int:
    """The indicator ``A*`` at the centre: 1 iff the root's load equals 1."""
    root_out = outputs[nbhd.root]
    if root_out is None:
        raise RuntimeError("the algorithm announced no output at the root")
    load = sum(root_out.values(), Fraction(0))
    return 1 if load == ONE else 0


def lemma6_check(
    algorithm: DistributedAlgorithm,
    nbhd: LoopyNeighbourhood,
    pool: Sequence[int],
    globals_: Optional[Dict[str, Any]] = None,
) -> bool:
    """Lemma 6: the algorithm saturates the centre under an order-respecting
    assignment from the pool."""
    phi = assign_ids_respecting_order(nbhd.ordered_nodes, pool)
    outputs = evaluate_id_on_neighbourhood(algorithm, nbhd, phi, globals_)
    return saturation_of_root(nbhd, outputs) == 1


def lemma7_check(
    algorithm: DistributedAlgorithm,
    nbhd: LoopyNeighbourhood,
    pool: Sequence[int],
    limit: int = 5,
    globals_: Optional[Dict[str, Any]] = None,
) -> bool:
    """Lemma 7: all order-respecting assignments from the (sparse) pool give
    the same root output."""
    reference: Optional[Dict[Node, Fraction]] = None
    for phi in order_respecting_assignments(nbhd.ordered_nodes, pool, limit):
        outputs = evaluate_id_on_neighbourhood(algorithm, nbhd, phi, globals_)
        root_out = outputs[nbhd.root]
        if root_out is None:
            return False
        if reference is None:
            reference = root_out
        elif reference != root_out:
            return False
    return True


def extract_order_invariant_ids(
    algorithm: DistributedAlgorithm,
    neighbourhoods: Sequence[LoopyNeighbourhood],
    universe: Sequence[int],
    target: int,
    globals_: Optional[Dict[str, Any]] = None,
) -> Optional[List[int]]:
    """Lemma 5, executably: find identifiers on which ``A*`` is order-invariant.

    Colours each neighbourhood's size-``k`` identifier subsets by the
    saturation pattern the assignment induces at the centre, then runs the
    finite Ramsey refinement.  Returns the identifier set ``I`` or ``None``
    when the universe is too small.
    """
    templates = []
    for nbhd in neighbourhoods:
        def behaviour(ids: Tuple[int, ...], nbhd=nbhd) -> Hashable:
            phi = {v: ids[i] for i, v in enumerate(nbhd.ordered_nodes)}
            outputs = evaluate_id_on_neighbourhood(algorithm, nbhd, phi, globals_)
            return saturation_of_root(nbhd, outputs)

        templates.append((nbhd.size, behaviour))
    found = order_invariant_subset(universe, templates, target)
    return None if found is None else found[0]


class OIFromID(OIAlgorithm):
    """Corollary 9's ``A_OI``: run the ID-algorithm under canonical identifiers.

    Given the sparse identifier set ``J``, the OI evaluation assigns the
    ``i``-th smallest identifier of ``J`` to the ``i``-th node of the
    ordered neighbourhood and runs the ID state machine for ``t`` rounds;
    by Lemma 7 the answer is independent of which order-respecting
    assignment was used, i.e. genuinely order-invariant.
    """

    def __init__(
        self,
        algorithm: DistributedAlgorithm,
        t: int,
        id_pool,
        globals_factory: Optional[Callable[["nx.Graph"], Dict[str, Any]]] = None,
        name: Optional[str] = None,
    ):
        if algorithm.model != "ID":
            raise ValueError("OIFromID wraps ID-model state machines")
        if t < 1:
            raise ValueError("state-machine adapters need t >= 1 (tau_0 hides the ports)")
        self.algorithm = algorithm
        self.t = t
        # the paper's J is an infinite set; accept either a finite sequence
        # or a factory ``n -> n identifiers`` standing in for one
        if callable(id_pool):
            self._pool_factory = id_pool
        else:
            fixed = sorted(id_pool)

            def _fixed_pool(n: int, fixed=fixed) -> List[int]:
                if n > len(fixed):
                    raise ValueError(
                        f"identifier pool of size {len(fixed)} cannot label {n} nodes"
                    )
                return fixed[:n]

            self._pool_factory = _fixed_pool
        self.globals_factory = globals_factory or (lambda tree: {})
        self.name = name or f"oi<=id[{type(algorithm).__name__}]"

    def evaluate(self, tree: POGraph, root: Node, ordered_nodes: List[Node]) -> Dict[Slot, Fraction]:
        from ..obs.tracer import current_tracer

        tracer = current_tracer()
        tracer.metrics.counter("sim.layer_runs", layer="oi_from_id", algorithm=self.name).inc()
        with tracer.span(
            "sim.oi_from_id",
            algorithm=self.name,
            neighbourhood=len(ordered_nodes),
            t=self.t,
        ):
            return self._evaluate(tree, root, ordered_nodes)

    def _evaluate(self, tree: POGraph, root: Node, ordered_nodes: List[Node]) -> Dict[Slot, Fraction]:
        pool = list(self._pool_factory(len(ordered_nodes)))
        phi = assign_ids_respecting_order(ordered_nodes, pool)
        undirected = nx.Graph()
        undirected.add_nodes_from(phi[v] for v in tree.nodes())
        for e in tree.edges():
            undirected.add_edge(phi[e.tail], phi[e.head])
        network = IDNetwork(undirected, globals_=self.globals_factory(undirected))
        # t-time in the paper's tau_t sense = t - 1 message rounds for a
        # machine whose nodes see their ports at initialisation; see the
        # radius-convention note in repro.core.sim_po_oi.
        result = run_rounds(network, self.algorithm, rounds=self.t - 1)
        root_out = result.outputs[phi[root]]
        if root_out is None:
            raise RuntimeError(
                f"{self.name}: no output or snapshot at the root after {self.t} rounds"
            )
        slots: Dict[Slot, Fraction] = {}
        for e in tree.out_edges(root):
            slots[("out", e.color)] = Fraction(root_out[phi[e.head]])
        for e in tree.in_edges(root):
            slots[("in", e.color)] = Fraction(root_out[phi[e.tail]])
        return slots
