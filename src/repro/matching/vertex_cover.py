"""Vertex cover via maximal edge packings (the application behind [3]).

The paper's ``O(Delta)`` upper bound comes from Astrand-Suomela's work on
*vertex cover*: if ``y`` is a **maximal** fractional matching (edge
packing), the set of saturated nodes

    C(y) = { v : y[v] = 1 }

is a vertex cover (maximality: every edge has a saturated endpoint) of size
at most twice the minimum (LP duality: ``|C| <= sum_{v in C} y[v] <=
2 * sum_e y(e) <= 2 * nu_f <= 2 * tau``).  This module provides the
extraction, the verification, and the LP lower bound used to measure the
approximation ratio — making the paper's motivating application runnable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Set, Tuple

from ..graphs.multigraph import ECGraph
from .fm import FractionalMatching, ONE
from .lp import max_weight_fm_lp

Node = Hashable

__all__ = [
    "vertex_cover_from_fm",
    "is_vertex_cover",
    "vertex_cover_quality",
]


def vertex_cover_from_fm(fm: FractionalMatching) -> Set[Node]:
    """The saturated-node cover ``C(y)`` of a maximal FM.

    Raises ``ValueError`` if the FM is not maximal — the guarantee that
    ``C(y)`` covers every edge is exactly maximality.
    """
    if not fm.is_maximal():
        raise ValueError("the 2-approximation requires a *maximal* FM")
    return {v for v in fm.graph.nodes() if fm.node_load(v) == ONE}


def is_vertex_cover(g: ECGraph, cover: Set[Node]) -> bool:
    """Whether every (non-loop and loop) edge has an endpoint in ``cover``."""
    return all(e.u in cover or e.v in cover for e in g.edges())


def vertex_cover_quality(fm: FractionalMatching) -> Tuple[Set[Node], float, float]:
    """Extract the cover and measure it against the LP lower bound.

    Returns ``(cover, ratio_bound, lp_lower_bound)`` where
    ``lp_lower_bound = nu_f(G)`` (every vertex cover has at least that many
    nodes, by weak duality) and ``ratio_bound = |cover| / nu_f`` — the
    certified approximation factor, always at most 2 for maximal FMs.
    """
    cover = vertex_cover_from_fm(fm)
    lp_opt, _ = max_weight_fm_lp(fm.graph)
    # The ratio is measured against the scipy LP baseline, which is float by
    # nature (matching/lp.py is the declared floating module); this reporting
    # boundary is the one place matching code speaks float.
    if lp_opt == 0:
        return cover, 1.0 if not cover else float("inf"), 0.0  # repro: noqa[exact-arith]
    return cover, len(cover) / lp_opt, lp_opt  # repro: noqa[exact-arith]
