"""Tests for the end-to-end Theorem 1 pipeline (repro.core.theorem, Section 5.5)."""

from __future__ import annotations

import pytest

from repro.core.sim_po_oi import SymmetricOIAdapter
from repro.core.theorem import (
    Refutation,
    chain_id_to_ec,
    chain_oi_to_ec,
    chain_po_to_ec,
    refute,
)
from repro.graphs.families import cycle_graph
from repro.local.algorithm import SimulatedPOWeights
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.naive import ZeroFM
from repro.matching.proposal import ProposalFM


def id_pool(n: int):
    return [1000 + 7 * i for i in range(n)]


class TestChains:
    def test_po_chain_correct(self):
        ec = chain_po_to_ec(SimulatedPOWeights(ProposalFM("PO")))
        g = cycle_graph(6)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_maximal()

    def test_oi_chain_correct(self):
        ec = chain_oi_to_ec(SymmetricOIAdapter(ProposalFM("PO"), t=3))
        g = cycle_graph(6)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_maximal()

    def test_id_chain_correct(self):
        ec = chain_id_to_ec(ProposalFM("ID"), t=3, id_pool=id_pool)
        g = cycle_graph(6)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_maximal()


class TestRefute:
    def test_locality_violation_for_small_claims(self):
        r = refute(greedy_color_algorithm(), claimed_rounds=1, delta=5)
        assert r.kind == "locality-violation"
        assert r.step is not None and r.step.index == 1
        assert "isomorphic radius-1 views" in r.summary()

    def test_consistent_for_honest_claims(self):
        r = refute(greedy_color_algorithm(), claimed_rounds=10, delta=5)
        assert r.kind == "consistent"
        assert r.witness is not None and r.witness.achieved_depth == 3

    def test_incorrect_output_branch(self):
        r = refute(ZeroFM(), claimed_rounds=1, delta=4)
        assert r.kind == "incorrect-output"
        assert r.failure is not None
        assert "not" in r.summary()

    def test_boundary_claim(self):
        """claimed = Delta - 2 is exactly refutable; Delta - 1 is not."""
        r1 = refute(greedy_color_algorithm(), claimed_rounds=3, delta=5)
        assert r1.kind == "locality-violation"
        r2 = refute(greedy_color_algorithm(), claimed_rounds=4, delta=5)
        assert r2.kind == "consistent"


class TestFullPipelineDichotomy:
    """The Section 5.5 backwards reasoning against the real chain."""

    def test_truncated_chain_caught_as_incorrect(self):
        ec = chain_id_to_ec(ProposalFM("ID"), t=3, id_pool=id_pool)
        r = refute(ec, claimed_rounds=3, delta=4)
        assert r.kind == "incorrect-output"

    def test_generous_chain_certified_omega_delta(self):
        ec = chain_id_to_ec(ProposalFM("ID"), t=4, id_pool=id_pool)
        r = refute(ec, claimed_rounds=1, delta=4)
        assert r.kind == "locality-violation"
        assert r.witness.achieved_depth == 2
