"""Metrics registry: counters, gauges and histograms with labels.

A metric is identified by its name plus a (sorted) label set, e.g.
``registry.counter("adversary.checked_runs", algorithm="greedy", delta=6)``.
Repeated calls with the same name and labels return the same instrument, so
instrumented code can re-fetch instead of threading instrument handles
around.  :meth:`MetricsRegistry.snapshot` renders everything as plain
JSON-able dictionaries for the exporters.

The registry is deterministic given a deterministic workload: it never
reads clocks or entropy; histograms store exact sums of whatever numbers
are observed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "bucket_key",
    "percentile_from_buckets",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += n


class Gauge:
    """A value that can move both ways (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


_UNDERFLOW_BUCKET = "-inf"
_BUCKET_EXPONENT_FLOOR = -1074  # below the subnormal range: everything positive lands above
_BUCKET_EXPONENT_CEIL = 1024


def bucket_key(value) -> str:
    """The log2 bucket a value falls into, as a stable string key.

    Bucket ``"e"`` covers ``(2**(e-1), 2**e]``; non-positive values share the
    ``"-inf"`` underflow bucket.  String keys survive a JSON round trip
    unchanged, which is what makes bucket counts mergeable across worker
    snapshots.
    """
    if value <= 0:
        return _UNDERFLOW_BUCKET
    exponent = math.ceil(math.log2(value))
    return str(max(_BUCKET_EXPONENT_FLOOR, min(_BUCKET_EXPONENT_CEIL, exponent)))


def _bucket_sort_value(key: str) -> float:
    return float("-inf") if key == _UNDERFLOW_BUCKET else int(key)


def percentile_from_buckets(
    buckets: Dict[str, int],
    count: int,
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> Optional[float]:
    """Deterministic percentile estimate from log2 bucket counts.

    Walks buckets in ascending order until the cumulative count reaches
    ``ceil(q * count)`` and returns that bucket's upper edge, clamped into
    ``[lo, hi]`` (the exact observed min/max) so a single-valued histogram
    reports the value itself.  Returns ``None`` when there is nothing to
    summarise.  Because merged bucket counts are plain sums, the estimate is
    associative across snapshot merges.
    """
    if not count or not buckets:
        return None
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    edge = None
    for key in sorted(buckets, key=_bucket_sort_value):
        cumulative += buckets[key]
        if cumulative >= rank:
            edge = 0.0 if key == _UNDERFLOW_BUCKET else 2.0 ** int(key)
            break
    if edge is None:  # bucket counts short of `count`: fall back to the top edge
        edge = hi if hi is not None else 0.0
    if lo is not None:
        edge = max(edge, lo)
    if hi is not None:
        edge = min(edge, hi)
    return edge


class Histogram:
    """Streaming summary of observed values: count / sum / min / max plus
    log2 bucket counts, from which p50/p95 are derived deterministically."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0

    def percentile(self, q: float) -> Optional[float]:
        return percentile_from_buckets(
            self.buckets, self.count, q, lo=self.min, hi=self.max
        )

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(0.95)


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        return self._counters.setdefault((name, _label_key(labels)), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauges.setdefault((name, _label_key(labels)), Gauge())

    def histogram(self, name: str, **labels) -> Histogram:
        return self._histograms.setdefault((name, _label_key(labels)), Histogram())

    def snapshot(self) -> Dict[str, List[dict]]:
        """All instruments as JSON-able rows, sorted by (name, labels)."""

        def rows(store, render):
            return [
                {"name": name, "labels": dict(labels), **render(metric)}
                for (name, labels), metric in sorted(store.items())
            ]

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(
                self._histograms,
                lambda h: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "buckets": {
                        k: h.buckets[k]
                        for k in sorted(h.buckets, key=_bucket_sort_value)
                    },
                },
            ),
        }


class _NullInstrument:
    """One object that absorbs every instrument method, costlessly."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Registry façade returned by the no-op tracer: records nothing."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, List[dict]]:
        return {"counters": [], "gauges": [], "histograms": []}


NULL_METRICS = _NullMetricsRegistry()
