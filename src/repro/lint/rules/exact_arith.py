"""``exact-arith`` — the FM core computes with exact rationals only.

Every weight the paper's machinery handles is an exact ``Fraction``:
feasibility (``load <= 1``), maximality (saturation ``== 1``) and the
adversary's weight-difference witnesses are *equalities*, and a single
rounded float would turn a machine-checked proof step into a
floating-point coin toss.  Inside the exact scope (``repro.matching`` and
``repro.core``, minus the explicitly-floating LP baseline ``matching/lp.py``
and the reporting layer ``repro/analysis.py``) this rule flags:

* float (and complex) literals;
* ``float(...)`` coercions;
* true division ``/`` — division is only exact when both operands are
  already ``Fraction``s, which a reader cannot check locally; write
  ``Fraction(a, b)`` instead, or justify the ``/`` with
  ``# repro: noqa[exact-arith]`` stating why the operands are exact
  (``//`` on integers is untouched).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleUnderLint

RULE_ID = "exact-arith"


def check(mod: ModuleUnderLint) -> Iterator[Finding]:
    """Flag float literals, ``float()`` calls and ``/`` in the exact scope."""
    if not mod.in_exact_scope:
        return
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
            yield mod.finding(
                node,
                RULE_ID,
                f"float literal {node.value!r} in the exact-arithmetic core; "
                f"use Fraction (or noqa with justification)",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            yield mod.finding(
                node,
                RULE_ID,
                "float(...) coercion in the exact-arithmetic core; weights and "
                "loads must stay Fraction",
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            yield mod.finding(
                node,
                RULE_ID,
                "true division '/' is exact only on Fractions; write "
                "Fraction(a, b) or justify with noqa",
            )
