"""The multi-host backend: shard servers speaking JSON over stdlib sockets.

``repro serve`` (or :class:`ShardServer` embedded in tests) listens on a
``host:port`` and executes shard payloads it receives; ``SocketExecutor``
round-robins a round's shards across its hosts, ships each as
newline-delimited JSON, and raises the server's marshalled exception at
the driver as if the shard had run locally.  With no hosts configured the
executor self-hosts loopback servers on ephemeral ports — the "two-host"
CI smoke runs entirely inside one process, which also means its
``kill-worker`` faults degrade to raised
:class:`~repro.engine.faults.InjectedWorkerError` (capabilities report
``separate_process`` only for external hosts; see
:mod:`repro.engine.executors.base`).

Everything a payload carries is JSON-native and result rows carry only
JSON-native scalars, so a row that crossed the wire serialises
byte-identically to one computed in-process — the conformance suite
asserts exactly that.

Per-worker memory budgeting
---------------------------
The adversary's resident set is dominated by the witness balls it unfolds:
a degree-Δ cell touches rooted balls of radius up to Δ-2, whose node count
grows like Δ(Δ-1)^(Δ-3) — exponential in Δ.  A shard that packs several
Δ-large cells would hand one worker all of them at once, so the client
splits each shard into sequential *batches* whose summed
:func:`estimated_cell_volume` stays under ``memory_budget`` (a cell bigger
than the whole budget travels alone).  Batching changes only how many
requests a shard takes — rows are concatenated in cell order, so results
are unchanged.

This module is a sanctioned worker module (``LintConfig.worker_modules``):
the loopback servers run on named background threads and the client fans
a round out over a thread pool (one thread per host; in-process shard
execution is still serialised by the shard runtime's ambient lock).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import List, Optional, Sequence, Tuple

from ...obs.export import merge_trace_documents
from ..cache import CacheStats
from ..faults import InjectedWorkerError
from .base import ExecutorCapabilities, ExecutorContext, ShardFailure, ShardOutcome, SweepExecutor
from .shard import CellExecutionError, CellTimeout, run_shard

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "ShardServer",
    "SocketExecutor",
    "batch_cells_by_volume",
    "estimated_ball_volume",
    "estimated_cell_volume",
    "parse_hosts",
]

#: default per-request budget, in estimated resident ball nodes: generous
#: enough that a whole smoke shard is one request, small enough that the
#: E1 grid's Δ=8 cells (≈3·10⁵ nodes each) travel alone
DEFAULT_MEMORY_BUDGET = 100_000

_ENCODING = "utf-8"


def estimated_ball_volume(delta: int) -> int:
    """Nodes in a radius-(Δ-2) ball of a Δ-regular tree — the witness size.

    The Section 4 adversary unfolds witness balls of radius up to Δ-2, so
    this closed form — ``1 + Δ·Σ_{r<Δ-2} (Δ-1)^r`` — upper-bounds the
    largest rooted graph a cell materialises.  It is a *proxy* for bytes
    (nodes, not bytes), but it is monotone and exponential in Δ, which is
    the property budgeting needs.
    """
    if delta < 2:
        return 1
    return 1 + delta * sum((delta - 1) ** r for r in range(max(delta - 2, 0)))


def estimated_cell_volume(cell: dict) -> int:
    """Budget cost of one cell payload dict: both witness balls of its Δ."""
    return 2 * estimated_ball_volume(int(cell.get("delta", 2)))


def batch_cells_by_volume(cells: Sequence[dict], budget: int) -> List[List[dict]]:
    """Greedy in-order packing of cell dicts under ``budget`` volume.

    Deterministic (order-preserving, no reordering) so batching can never
    change result rows.  A batch always holds at least one cell: a cell
    whose own volume exceeds the budget still has to run somewhere.
    """
    if budget <= 0:
        raise ValueError(f"memory_budget must be positive, got {budget}")
    batches: List[List[dict]] = []
    current: List[dict] = []
    used = 0
    for cell in cells:
        cost = estimated_cell_volume(cell)
        if current and used + cost > budget:
            batches.append(current)
            current, used = [], 0
        current.append(cell)
        used += cost
    if current:
        batches.append(current)
    return batches


def parse_hosts(spec) -> List[Tuple[str, int]]:
    """Normalise host specs: ``"h1:7641,h2:7642"``, tuples, or mixtures."""
    if spec is None:
        return []
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        parts = list(spec)
    hosts: List[Tuple[str, int]] = []
    for part in parts:
        if isinstance(part, str):
            host, sep, port = part.rpartition(":")
            if not sep or not host:
                raise ValueError(f"bad host spec {part!r} (want HOST:PORT)")
            try:
                hosts.append((host, int(port)))
            except ValueError:
                raise ValueError(f"bad port in host spec {part!r}") from None
        else:
            host, port = part
            hosts.append((str(host), int(port)))
    return hosts


def _send_line(fh, obj: dict) -> None:
    fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
    fh.flush()


def _recv_line(fh) -> dict:
    line = fh.readline()
    if not line:
        raise ConnectionError("shard server closed the connection mid-request")
    return json.loads(line)


def _error_payload(exc: BaseException) -> dict:
    """Marshal a shard exception for the wire; unmarshalled by the client."""
    payload = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, CellExecutionError):
        payload["record"] = exc.as_record()
    elif isinstance(exc, CellTimeout):
        payload["key"] = exc.key
        payload["timeout"] = exc.timeout
    return payload


def _raise_remote(error: dict) -> None:
    """Re-raise a server-marshalled exception with its original type.

    The three engine-meaningful types are reconstructed exactly (the
    driver's recovery triage dispatches on them); anything else surfaces
    as a RuntimeError naming the remote type.
    """
    kind = error.get("type")
    message = error.get("message", "")
    if kind == "CellExecutionError":
        record = error.get("record") or {}
        raise CellExecutionError(
            record.get("key", "?"),
            record.get("algorithm", "?"),
            record.get("delta", -1),
            record.get("chain", "?"),
            record.get("seed", -1),
            record.get("error", message),
        )
    if kind == "CellTimeout":
        raise CellTimeout(error.get("key", "?"), float(error.get("timeout", 0.0)))
    if kind == "InjectedWorkerError":
        raise InjectedWorkerError(message)
    raise RuntimeError(f"shard server error: {kind}: {message}")


class ShardServer:
    """Serve shard payloads over a socket; one request at a time.

    The protocol is one JSON object per line in each direction::

        -> {"op": "run_shard", "payload": {...}}
        <- {"ok": true, "result": [shard, rows, trace, cache_stats]}
        <- {"ok": false, "error": {"type": ..., "message": ...}}

    plus ``{"op": "ping"}`` for liveness.  Requests execute strictly
    sequentially — the server is one worker, and in-process shard
    execution is serialised by the shard runtime anyway — so a host's
    memory high-water mark is one batch, which is what the client's
    volume budgeting bounds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0

    def serve_forever(self, max_requests: Optional[int] = None) -> None:
        """Accept and answer requests until stopped (or ``max_requests``)."""
        try:
            while not self._stop_event.is_set():
                if max_requests is not None and self.requests_served >= max_requests:
                    break
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with conn:
                    self._handle(conn, max_requests)
        finally:
            self._listener.close()

    def _handle(self, conn: socket.socket, max_requests: Optional[int]) -> None:
        fh = conn.makefile("rw", encoding=_ENCODING, newline="\n")
        with fh:
            while not self._stop_event.is_set():
                if max_requests is not None and self.requests_served >= max_requests:
                    return
                try:
                    request = _recv_line(fh)
                except ConnectionError:
                    return  # client hung up between requests
                except (OSError, ValueError):
                    return  # torn connection or garbage framing: drop it
                self.requests_served += 1
                try:
                    reply = self._answer(request)
                except Exception as exc:  # noqa: BLE001 - marshalled to the client
                    reply = {"ok": False, "error": _error_payload(exc)}
                try:
                    _send_line(fh, reply)
                except OSError:
                    return

    def _answer(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "run_shard":
            outcome = run_shard(request["payload"])
            return {"ok": True, "result": list(outcome)}
        return {"ok": False, "error": {"type": "ValueError", "message": f"unknown op {op!r}"}}

    def start(self) -> None:
        """Serve on a named background thread (the loopback/test mode)."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True, name=f"shard-server-{self.address[1]}"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._listener.close()


class SocketExecutor(SweepExecutor):
    """Fan a round's shards out over shard servers reached by socket."""

    name = "socket"

    def __init__(
        self,
        workers: int = 0,
        hosts=None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
    ):
        if memory_budget <= 0:
            raise ValueError(f"memory_budget must be positive, got {memory_budget}")
        self.memory_budget = memory_budget
        self._external = parse_hosts(hosts)
        #: fan-out: the configured hosts, or a self-hosted loopback pair
        self.width = len(self._external) if self._external else max(2, workers)
        self._local_servers: List[ShardServer] = []
        self._hosts: List[Tuple[str, int]] = list(self._external)
        # kill-worker only arms the real SIGKILL on external hosts — a
        # loopback "worker" is a thread of this very process
        self.capabilities = ExecutorCapabilities(
            parallel=True,
            separate_process=bool(self._external),
            supports_on_row=False,
        )

    def start(self, ctx: ExecutorContext) -> None:
        if self._external or self._local_servers:
            return
        for _ in range(self.width):
            server = ShardServer()
            server.start()
            self._local_servers.append(server)
        self._hosts = [server.address for server in self._local_servers]

    def run_round(
        self, payloads: List[dict], ctx: ExecutorContext
    ) -> Tuple[List[ShardOutcome], List[ShardFailure]]:
        outcomes: List[ShardOutcome] = []
        failures: List[ShardFailure] = []
        if not payloads:
            return outcomes, failures
        if not self._hosts:
            self.start(ctx)
        from concurrent.futures import ThreadPoolExecutor

        assigned = [
            (payload, self._hosts[index % len(self._hosts)])
            for index, payload in enumerate(payloads)
        ]
        with ThreadPoolExecutor(
            max_workers=min(len(self._hosts), len(payloads)),
            thread_name_prefix="shard-client",
        ) as pool:
            futures = [
                (pool.submit(self._run_on_host, payload, address), payload)
                for payload, address in assigned
            ]
            for future, payload in futures:
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - triaged by the driver
                    failures.append((payload, exc))
        return outcomes, failures

    def submit_shard(self, payload: dict, ctx: ExecutorContext) -> ShardOutcome:
        if not self._hosts:
            self.start(ctx)
        return self._run_on_host(payload, self._hosts[payload["shard"] % len(self._hosts)])

    def _run_on_host(self, payload: dict, address: Tuple[str, int]) -> ShardOutcome:
        """Ship one shard to one host, batched under the memory budget."""
        shard_index = payload["shard"]
        batches = batch_cells_by_volume(payload["cells"], self.memory_budget)
        rows: List[dict] = []
        docs: List[dict] = []
        stats_dicts: List[dict] = []
        with socket.create_connection(address, timeout=None) as conn:
            fh = conn.makefile("rw", encoding=_ENCODING, newline="\n")
            with fh:
                for batch in batches:
                    request = {"op": "run_shard", "payload": {**payload, "cells": batch}}
                    _send_line(fh, request)
                    reply = _recv_line(fh)
                    if not reply.get("ok"):
                        _raise_remote(reply.get("error", {}))
                    _, batch_rows, doc, stats = reply["result"]
                    rows.extend(batch_rows)
                    docs.append(doc)
                    stats_dicts.append(stats)
        if len(docs) == 1:
            doc = docs[0]
        else:
            doc = merge_trace_documents(docs, command=f"sweep shard {shard_index}")
        merged_stats = CacheStats.merged(stats_dicts).as_dict()
        return shard_index, rows, doc, merged_stats

    def is_worker_loss(self, exc: BaseException) -> bool:
        # a vanished server (connection refused, reset, or torn mid-reply)
        # is the socket backend's "worker died"
        return isinstance(exc, (OSError, InjectedWorkerError))

    def close(self) -> None:
        for server in self._local_servers:
            server.stop()
        self._local_servers = []
        if not self._external:
            self._hosts = []
