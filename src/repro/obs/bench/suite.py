"""Declarative scaling-experiment suites for ``repro bench``.

A :class:`Suite` is a named tuple of :class:`Experiment` declarations; each
experiment names a runner ``kind`` (registered in
:mod:`repro.obs.bench.runner`), its parameters, and the per-metric
:class:`Threshold` rules the regression gate (``repro bench --check``)
enforces against the committed trajectory.

Threshold philosophy: deterministic metrics (row checksums, cell counts,
serial cache hit-rates) are gated tightly or exactly — any drift there is a
semantic change, not noise; wall-clock metrics carry generous ratios
(2–3x) so the gate catches the "algorithm went quadratic" class of
regression without flaking on CI runner variance.  A threshold with neither
``ratio`` nor ``delta`` is informational: the metric is tracked and
reported but never fails the gate (worker-scaling speedup is the canonical
example — spawn overhead dominates at smoke scale).

This module reads no clocks: declarations are pure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["Threshold", "Experiment", "Suite", "SUITES", "suite_named"]


@dataclass(frozen=True)
class Threshold:
    """A per-metric regression rule.

    ``direction`` says which way is bad: ``"higher-is-worse"`` (wall time),
    ``"lower-is-worse"`` (hit-rates, speedups), or ``"exact"`` (checksums —
    any change at all trips the gate).  For the directional kinds, the
    allowed worsening is ``max(ratio * |baseline|, delta)`` over the
    baseline value; with both ``None`` the metric is informational only.
    """

    metric: str
    direction: str = "higher-is-worse"
    ratio: Optional[float] = None
    delta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in ("higher-is-worse", "lower-is-worse", "exact"):
            raise ValueError(f"unknown threshold direction: {self.direction!r}")

    @property
    def informational(self) -> bool:
        return self.direction != "exact" and self.ratio is None and self.delta is None

    def judge(self, baseline, current) -> Optional[str]:
        """``None`` when ``current`` passes against ``baseline``, else the
        human-readable reason it does not."""
        if self.direction == "exact":
            if current != baseline:
                return f"changed from {baseline!r} to {current!r} (exact metric)"
            return None
        if self.informational:
            return None
        if not isinstance(baseline, (int, float)) or not isinstance(current, (int, float)):
            return (
                f"not comparable: baseline {baseline!r} vs current {current!r}"
                if current != baseline
                else None
            )
        worsening = (
            current - baseline
            if self.direction == "higher-is-worse"
            else baseline - current
        )
        allowed = 0.0
        if self.ratio is not None:
            allowed = max(allowed, self.ratio * abs(baseline))
        if self.delta is not None:
            allowed = max(allowed, self.delta)
        if worsening > allowed:
            return (
                f"worsened by {worsening:.4g} "
                f"({baseline!r} -> {current!r}, allowed {allowed:.4g})"
            )
        return None


@dataclass(frozen=True)
class Experiment:
    """One scaling experiment: a runner kind, its params, its gates."""

    name: str
    kind: str
    title: str
    params: Mapping = field(default_factory=dict)
    thresholds: Tuple[Threshold, ...] = ()

    def threshold_for(self, metric: str) -> Optional[Threshold]:
        for threshold in self.thresholds:
            if threshold.metric == metric:
                return threshold
        return None


@dataclass(frozen=True)
class Suite:
    """A named, ordered collection of experiments."""

    name: str
    experiments: Tuple[Experiment, ...]

    def experiment_named(self, name: str) -> Optional[Experiment]:
        for experiment in self.experiments:
            if experiment.name == name:
                return experiment
        return None


def _delta_scaling(name: str, deltas: Tuple[int, ...]) -> Experiment:
    return Experiment(
        name=name,
        kind="delta-scaling",
        title=f"E1 sweep wall time vs Δ ∈ {{{', '.join(map(str, deltas))}}}",
        params={"algorithms": ("greedy", "proposal"), "deltas": deltas},
        thresholds=(
            Threshold("wall_s", "higher-is-worse", ratio=2.0),
            Threshold("rows_sha256", "exact"),
            Threshold("cells", "exact"),
            Threshold("refuted", "exact"),
            Threshold("cache_hit_rate", "lower-is-worse", delta=0.02),
            Threshold("rows_per_s", "lower-is-worse"),  # informational
        ),
    )


def _worker_scaling(name: str, deltas: Tuple[int, ...], workers: Tuple[int, ...]) -> Experiment:
    return Experiment(
        name=name,
        kind="worker-scaling",
        title=f"engine.pool scaling over workers ∈ {{{', '.join(map(str, workers))}}}",
        params={"deltas": deltas, "workers": workers},
        thresholds=(
            Threshold("rows_match", "exact"),
            Threshold("wall_s_serial", "higher-is-worse", ratio=2.0),
            # parallel wall time is spawn-dominated at smoke scale: track,
            # gate only against a 3x blowup
            Threshold(f"wall_s_w{max(workers)}", "higher-is-worse", ratio=3.0),
            Threshold("speedup", "lower-is-worse"),  # informational
        ),
    )


def _cache_scaling(name: str, deltas: Tuple[int, ...]) -> Experiment:
    return Experiment(
        name=name,
        kind="cache-scaling",
        title="CanonicalFormCache cold vs warm hit-rate scaling",
        params={"algorithms": ("greedy", "proposal"), "deltas": deltas},
        thresholds=(
            Threshold("cold_hit_rate", "lower-is-worse", delta=0.02),
            Threshold("warm_hit_rate", "lower-is-worse", delta=0.02),
            Threshold("wall_s_cold", "higher-is-worse", ratio=2.0),
            Threshold("warm_speedup", "lower-is-worse"),  # informational
        ),
    )


def _canonical_microbench(name: str, nodes: int, seeds: Tuple[int, ...]) -> Experiment:
    return Experiment(
        name=name,
        kind="canonical-microbench",
        title=f"SoA canonicaliser over {len(seeds)} loopy trees of {nodes} nodes",
        params={"nodes": nodes, "loops": 2, "seeds": seeds},
        thresholds=(
            Threshold("wall_s", "higher-is-worse", ratio=2.0),
            Threshold("forms_sha256", "exact"),
            Threshold("forms", "exact"),
            # a warm repeat must resolve every root from the shape-plan
            # cache — losing that is losing the plan cache itself
            Threshold("warm_plan_hit_rate", "lower-is-worse", delta=0.02),
            Threshold("forms_per_s", "lower-is-worse"),  # informational
        ),
    )


#: the declared suites; ``smoke`` is the CI gate, ``full`` the E1-scale run
SUITES: Dict[str, Suite] = {
    "smoke": Suite(
        name="smoke",
        experiments=(
            _delta_scaling("sweep.delta_scaling", deltas=(3, 4, 5)),
            _worker_scaling("sweep.worker_scaling", deltas=(3, 4, 5), workers=(0, 2)),
            _cache_scaling("cache.hit_scaling", deltas=(3, 4)),
            _canonical_microbench(
                "canonical.microbench", nodes=24, seeds=(0, 1, 2, 3, 4, 5, 6, 7)
            ),
        ),
    ),
    "full": Suite(
        name="full",
        experiments=(
            _delta_scaling("sweep.delta_scaling", deltas=(3, 4, 5, 6, 7, 8)),
            _worker_scaling(
                "sweep.worker_scaling", deltas=(3, 4, 5, 6, 7, 8), workers=(0, 2, 4)
            ),
            _cache_scaling("cache.hit_scaling", deltas=(3, 4, 5, 6)),
            _canonical_microbench(
                "canonical.microbench", nodes=48, seeds=tuple(range(16))
            ),
        ),
    ),
}


def suite_named(name: str) -> Suite:
    """Look a suite up by name; raises ``ValueError`` naming the options."""
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {name!r}; declared suites: {', '.join(sorted(SUITES))}"
        ) from None
