"""E12 — Appendix B with a real randomised algorithm + Section 2.1 separations.

Extends E9: instead of toy oracles, the randomised *maximal FM* algorithm
(random edge priorities) is measured — failure probability vs randomness
width, derandomisation via Lemma 10 — and the Figure 1 model separations
are exercised: EC solves maximal matching strictly locally, cannot 2-colour
1-regular graphs (symmetry certificate), while PO 2-colours them in zero
rounds.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.derandomize import find_good_assignment
from repro.core.separations import (
    ec_coloring_impossibility_certificate,
    maximal_matching_in_ec,
    two_color_one_regular_po,
)
from repro.graphs.digraph import POGraph
from repro.graphs.families import random_bounded_degree_graph
from repro.local.randomized import uniform_tape
from repro.local.views import ec_view_tree
from repro.matching.random_priority import (
    RandomPriorityEC,
    failure_rate,
    id_output_is_valid_fm,
    run_random_priority_id,
)
from repro.matching.fm import fm_from_node_outputs


@pytest.mark.parametrize("bits", [1, 2, 4, 8, 16])
def test_failure_rate_vs_bits(benchmark, record, bits):
    rng = random.Random(20 + bits)
    g = nx.random_regular_graph(3, 14, seed=1)
    rate = benchmark.pedantic(
        lambda: failure_rate(g, rng, bits=bits, samples=50), rounds=1, iterations=1
    )
    record(
        "E12 randomised FM: failure probability vs randomness width",
        bits=bits,
        failure_rate=round(float(rate), 3),
    )


def test_lemma10_on_real_algorithm(benchmark, record):
    def correct(g, rho):
        if g.number_of_edges() == 0:
            return True
        outs, _ = run_random_priority_id(g, rho)
        return id_output_is_valid_fm(g, outs)

    rng = random.Random(30)
    found = benchmark.pedantic(
        lambda: find_good_assignment(correct, id_sets=[range(4)], rng=rng, rho_bits=20),
        rounds=1,
        iterations=1,
    )
    assert found is not None
    record(
        "E12 Lemma 10 with the real randomised FM algorithm",
        n=4,
        graphs_checked=64,
        good_pair_found=True,
    )


def test_derandomized_runs_in_ec(benchmark, record):
    """A_rho as a deterministic EC algorithm computing verified maximal FMs."""
    g = random_bounded_degree_graph(20, 4, seed=5)
    tape = uniform_tape(g.nodes(), random.Random(31), bits=30)
    alg = RandomPriorityEC(tape)
    outputs = benchmark.pedantic(lambda: alg.run_on(g), rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_feasible() and fm.is_maximal()
    record(
        "E12 derandomised algorithm in the EC simulator",
        n=g.num_nodes(),
        rounds=alg.rounds_used(g),
        maximal=fm.is_maximal(),
    )


@pytest.mark.parametrize("pairs", [2, 8, 32])
def test_separation_po_colors_ec_cannot(benchmark, record, pairs):
    g = POGraph()
    for i in range(pairs):
        g.add_edge(("a", i), ("b", i), 1)
    colors = benchmark.pedantic(lambda: two_color_one_regular_po(g), rounds=1, iterations=1)
    assert all(colors[("a", i)] != colors[("b", i)] for i in range(pairs))
    cert, u, v = ec_coloring_impossibility_certificate(4)
    record(
        "E12 Figure 1 separation: colouring 1-regular graphs",
        matching_edges=pairs,
        po_rounds=0,
        po_proper=True,
        ec_certificate="views equal at radius 4",
    )


@pytest.mark.parametrize("delta", [3, 5, 8])
def test_separation_ec_matches(benchmark, record, delta):
    g = random_bounded_degree_graph(30, delta, seed=6)
    chosen, rounds = benchmark.pedantic(
        lambda: maximal_matching_in_ec(g), rounds=1, iterations=1
    )
    record(
        "E12 Figure 1 separation: maximal matching is strictly local in EC",
        delta=delta,
        ec_rounds=rounds,
        matching_size=len(chosen),
    )
