"""Fractional and integral matching library: datatypes, verifiers, solvers,
distributed algorithms and baselines (paper, Sections 1.1-1.2)."""

from .fm import (
    FractionalMatching,
    InconsistentOutputError,
    fm_from_node_outputs,
    po_node_load,
)
from .greedy_color import GreedyColorFM, greedy_color_algorithm
from .integral import (
    greedy_matching_by_color,
    panconesi_rizzi_matching,
    randomized_matching,
    validate_maximal_matching,
)
from .kuhn_approx import DoublingFM, doubling_algorithm, initial_exponent
from .lp import (
    fractional_matching_number_exact,
    max_weight_fm_lp,
    min_fractional_vertex_cover_lp,
)
from .naive import DegreeSplitFM, ParityTiltFM, SelfishFM, ZeroFM
from .proposal import ProposalFM, proposal_algorithm
from .random_priority import (
    RandomPriorityEC,
    RandomPriorityFM,
    failure_rate,
    id_output_is_valid_fm,
    run_random_priority_id,
)
from .vertex_cover import is_vertex_cover, vertex_cover_from_fm, vertex_cover_quality
from .sequential import greedy_maximal_fm, greedy_maximal_matching, matching_as_fm
from .verify import (
    LocalFMVerifier,
    VerifierVerdict,
    check_maximal_fm,
    verify_distributed,
)

__all__ = [
    "FractionalMatching",
    "InconsistentOutputError",
    "fm_from_node_outputs",
    "po_node_load",
    "GreedyColorFM",
    "greedy_color_algorithm",
    "greedy_matching_by_color",
    "panconesi_rizzi_matching",
    "randomized_matching",
    "validate_maximal_matching",
    "DoublingFM",
    "doubling_algorithm",
    "initial_exponent",
    "fractional_matching_number_exact",
    "max_weight_fm_lp",
    "min_fractional_vertex_cover_lp",
    "DegreeSplitFM",
    "ParityTiltFM",
    "SelfishFM",
    "ZeroFM",
    "ProposalFM",
    "proposal_algorithm",
    "RandomPriorityEC",
    "RandomPriorityFM",
    "failure_rate",
    "id_output_is_valid_fm",
    "run_random_priority_id",
    "is_vertex_cover",
    "vertex_cover_from_fm",
    "vertex_cover_quality",
    "greedy_maximal_fm",
    "greedy_maximal_matching",
    "matching_as_fm",
    "LocalFMVerifier",
    "VerifierVerdict",
    "check_maximal_fm",
    "verify_distributed",
]
