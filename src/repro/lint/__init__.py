"""Model-contract static analysis for the reproduction (``repro.lint``).

The repository's correctness story is "everything verified, nothing
trusted" (DESIGN.md): adversary invariants, covering maps and FM maximality
are machine-checked.  The *model contracts* the algorithms live under —
anonymity, determinism, exact arithmetic, frozen views — were previously
policed only dynamically, when a test happened to exercise the right lift.
This package turns them into an AST-level static pass:

* ``locality``        — EC/PO/OI algorithm classes must not read
                        ``ctx.node`` / ``ctx.identifier`` or reach into the
                        runtime/graph machinery from node-local code;
* ``determinism``     — no ambient randomness (global ``random.*``,
                        ``numpy.random``, ``time``, ``os.urandom``,
                        ``secrets``) outside explicitly randomized modules;
* ``exact-arith``     — no float literals, ``float()`` coercions or true
                        division in the exact-arithmetic core
                        (``repro.matching`` / ``repro.core`` minus the
                        explicitly-floating LP module);
* ``frozen-mutation`` — no in-place mutation of :class:`NodeContext`,
                        view trees or neighbourhood balls.

Findings are suppressed per line with ``# repro: noqa[rule-id]`` (bare
``# repro: noqa`` silences every rule on the line); a module opts into
randomness with a ``# repro: randomized`` marker line.  See
``docs/static_analysis.md`` for rule-by-rule justification and the runtime
counterpart, the locality sanitizer in :mod:`repro.local.sanitize`.
"""

from __future__ import annotations

from .engine import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    ModuleUnderLint,
    lint_paths,
    lint_source,
    module_name_for,
)
from .reporters import render_json, render_text, summarize
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "ModuleUnderLint",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "render_json",
    "render_text",
    "summarize",
]
