"""Tests for the PO digraph substrate (repro.graphs.digraph)."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import ImproperPOColoringError, POGraph


def build_sample() -> POGraph:
    g = POGraph()
    g.add_edge("a", "b", 1)
    g.add_edge("b", "a", 1)  # same colour opposite direction: legal
    g.add_edge("b", "c", 2)
    g.add_edge("c", "c", 1)  # directed loop
    return g


class TestConstruction:
    def test_same_color_opposite_directions_allowed(self):
        g = POGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "a", 1)
        assert g.num_edges() == 2

    def test_out_slot_conflict_rejected(self):
        g = POGraph()
        g.add_edge("a", "b", 1)
        with pytest.raises(ImproperPOColoringError):
            g.add_edge("a", "c", 1)

    def test_in_slot_conflict_rejected(self):
        g = POGraph()
        g.add_edge("a", "b", 1)
        with pytest.raises(ImproperPOColoringError):
            g.add_edge("c", "b", 1)

    def test_duplicate_eid_rejected(self):
        g = POGraph()
        g.add_edge("a", "b", 1, eid=3)
        with pytest.raises(ValueError):
            g.add_edge("b", "c", 2, eid=3)


class TestLoops:
    def test_directed_loop_counts_twice(self):
        """PO convention (paper Section 3.5): a directed loop adds +2."""
        g = build_sample()
        assert g.degree("c") == 3  # in-edge colour 2, loop out + loop in

    def test_loop_occupies_both_slots(self):
        g = POGraph()
        g.add_edge("v", "v", 1)
        assert g.out_colors("v") == [1]
        assert g.in_colors("v") == [1]
        with pytest.raises(ImproperPOColoringError):
            g.add_edge("v", "w", 1)
        with pytest.raises(ImproperPOColoringError):
            g.add_edge("w", "v", 1)

    def test_loop_count(self):
        g = build_sample()
        assert g.loop_count("c") == 1
        assert g.loop_count("a") == 0

    def test_incident_edges_dedupes_loops(self):
        g = build_sample()
        incident_c = g.incident_edges("c")
        assert len(incident_c) == 2  # the loop appears once


class TestQueries:
    def test_degree_counts_both_directions(self):
        g = build_sample()
        assert g.degree("a") == 2
        assert g.degree("b") == 3

    def test_out_in_edge_lookup(self):
        g = build_sample()
        assert g.out_edge("a", 1).head == "b"
        assert g.in_edge("a", 1).tail == "b"
        assert g.out_edge("a", 2) is None

    def test_neighbors(self):
        g = build_sample()
        assert set(g.neighbors("b")) == {"a", "c"}
        assert "c" in g.neighbors("c")  # loop

    def test_colors(self):
        assert build_sample().colors() == [1, 2]

    def test_max_degree(self):
        assert build_sample().max_degree() == 3

    def test_edges_sorted_by_color(self):
        g = POGraph()
        g.add_edge("v", "a", 2)
        g.add_edge("v", "b", 1)
        assert [e.color for e in g.out_edges("v")] == [1, 2]


class TestTraversalCopy:
    def test_bfs_ignores_direction(self):
        g = build_sample()
        d = g.bfs_distances("a")
        assert d == {"a": 0, "b": 1, "c": 2}

    def test_is_connected(self):
        g = build_sample()
        assert g.is_connected()
        g.add_node("isolated")
        assert not g.is_connected()

    def test_copy(self):
        g = build_sample()
        h = g.copy()
        h.remove_edge(h.out_edge("a", 1).eid)
        assert g.out_edge("a", 1) is not None

    def test_remove_edge_frees_slots(self):
        g = build_sample()
        e = g.out_edge("b", 2)
        g.remove_edge(e.eid)
        assert g.out_edge("b", 2) is None
        g.add_edge("b", "a", 2)
        g.validate()

    def test_contains_iter_len(self):
        g = build_sample()
        assert "a" in g
        assert len(g) == 3
        assert set(g) == {"a", "b", "c"}

    def test_validate(self):
        build_sample().validate()
