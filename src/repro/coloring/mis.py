"""Luby's randomised maximal independent set (paper, Section 1.1 context).

The classical ``O(log n)``-round algorithm [Alon-Babai-Itai, Luby]: each
round every live node draws a random priority; local minima join the MIS and
are removed together with their neighbours.  Round-counted local simulation
with a caller-supplied RNG for reproducibility.

A maximal matching is an MIS of the line graph, which is how the randomised
matching baseline in :mod:`repro.matching.integral` uses this module.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Set, Tuple

import networkx as nx

Node = Hashable

__all__ = ["luby_mis", "validate_mis"]


def luby_mis(g: "nx.Graph", rng: random.Random, max_rounds: int = 10_000) -> Tuple[Set[Node], int]:
    """Compute an MIS of ``g``; returns ``(mis, rounds)``.

    Each round costs two message exchanges (priorities, then join
    announcements); we count it as 2 communication rounds.  Terminates with
    probability 1; expected ``O(log n)`` rounds.
    """
    live: Set[Node] = set(g.nodes())
    mis: Set[Node] = set()
    rounds = 0
    while live and rounds < max_rounds:
        priority = {v: rng.random() for v in live}
        joined = {
            v
            for v in live
            if all(priority[v] < priority[w] for w in g.neighbors(v) if w in live)
        }
        mis |= joined
        removed = set(joined)
        for v in joined:
            removed.update(w for w in g.neighbors(v) if w in live)
        live -= removed
        rounds += 2
    if live:  # pragma: no cover - would need astronomically bad luck
        raise RuntimeError("Luby MIS failed to terminate within the round cap")
    return mis, rounds


def validate_mis(g: "nx.Graph", mis: Set[Node]) -> bool:
    """Whether ``mis`` is independent and dominating (i.e. maximal)."""
    for v in mis:
        if any(w in mis for w in g.neighbors(v)):
            return False
    for v in g.nodes():
        if v not in mis and not any(w in mis for w in g.neighbors(v)):
            return False
    return True
