"""Tests for port numbering conversions (repro.graphs.ports, paper Figure 2)."""

from __future__ import annotations

import pytest

from repro.graphs.families import cycle_graph, single_node_with_loops, star_graph
from repro.graphs.ports import (
    po_double_from_ec,
    po_from_port_numbering,
    port_numbering_from_po,
)


class TestPO1ToPO2:
    def test_figure2a_style_conversion(self):
        # a path a - b - c with ports: a:[b], b:[a, c], c:[b]
        ports = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        orientation = {("a", "b"), ("c", "b")}
        g = po_from_port_numbering(ports, orientation)
        e = g.out_edge("a", (1, 1))
        assert e is not None and e.head == "b"
        e2 = g.out_edge("c", (1, 2))
        assert e2 is not None and e2.head == "b"

    def test_colors_encode_port_pairs(self):
        ports = {"u": ["v", "w"], "v": ["u"], "w": ["u"]}
        orientation = {("u", "v"), ("w", "u")}
        g = po_from_port_numbering(ports, orientation)
        # u->v: v is u's 1st neighbour, u is v's 1st neighbour -> colour (1,1)
        assert g.out_edge("u", (1, 1)).head == "v"
        # w->u: u is w's 1st neighbour, w is u's 2nd neighbour -> colour (1,2)
        assert g.out_edge("w", (1, 2)).head == "u"

    def test_missing_edge_in_ports_rejected(self):
        with pytest.raises(ValueError):
            po_from_port_numbering({"a": [], "b": []}, {("a", "b")})

    def test_duplicate_neighbour_rejected(self):
        with pytest.raises(ValueError):
            po_from_port_numbering({"a": ["b", "b"], "b": ["a"]}, set())


class TestPO2ToPO1:
    def test_out_then_in_by_color(self):
        ports = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        orientation = {("a", "b"), ("c", "b")}
        g = po_from_port_numbering(ports, orientation)
        numbering = port_numbering_from_po(g)
        roles_b = [role for _, role in numbering["b"]]
        # all out ports precede all in ports
        assert roles_b == sorted(roles_b, key=lambda r: 0 if r == "out" else 1)

    def test_loop_appears_twice(self):
        g = po_double_from_ec(single_node_with_loops(2))
        numbering = port_numbering_from_po(g)
        (node,) = numbering.keys()
        assert len(numbering[node]) == 4  # 2 loops x (out + in)


class TestECDoubling:
    def test_degrees_double(self):
        """Section 5.1: EC max degree D/2 -> PO max degree D."""
        for g in (cycle_graph(5), star_graph(4), single_node_with_loops(3)):
            d = po_double_from_ec(g)
            for v in g.nodes():
                assert d.degree(v) == 2 * g.degree(v)

    def test_nonloop_edge_becomes_two_arcs(self):
        g = star_graph(2)
        d = po_double_from_ec(g)
        e = g.edge_at(0, 1)
        assert d.edge(2 * e.eid).tail == e.u and d.edge(2 * e.eid).head == e.v
        assert d.edge(2 * e.eid + 1).tail == e.v and d.edge(2 * e.eid + 1).head == e.u

    def test_loop_becomes_one_directed_loop(self):
        g = single_node_with_loops(1)
        d = po_double_from_ec(g)
        assert d.num_edges() == 1
        arc = d.edges()[0]
        assert arc.is_loop

    def test_colors_preserved(self):
        g = cycle_graph(6)
        d = po_double_from_ec(g)
        assert set(d.colors()) == set(g.colors())

    def test_po_properness_holds(self):
        d = po_double_from_ec(cycle_graph(7))
        d.validate()

    def test_parallel_edges_keep_arc_provenance(self):
        """Regression: parallel EC edges double into distinct arc pairs.

        Arc ids ``2 * eid`` / ``2 * eid + 1`` must keep each parallel edge's
        identity and colour; loops map to the single arc ``2 * eid``.
        """
        from repro.graphs.multigraph import ECGraph

        g = ECGraph()
        e0 = g.add_edge("a", "b", 1)
        e1 = g.add_edge("a", "b", 2)
        loop = g.add_edge("a", "a", 3)
        d = po_double_from_ec(g)
        assert d.num_edges() == 5  # 2 arcs per parallel edge + 1 loop arc
        for eid, color in ((e0, 1), (e1, 2)):
            assert d.edge(2 * eid).color == color
            assert d.edge(2 * eid + 1).color == color
            assert d.edge(2 * eid).tail == "a" and d.edge(2 * eid).head == "b"
            assert d.edge(2 * eid + 1).tail == "b" and d.edge(2 * eid + 1).head == "a"
        assert d.edge(2 * loop).is_loop and d.edge(2 * loop).color == 3
        d.validate()

    def test_doubling_same_graph_twice_gives_same_digest(self):
        g = cycle_graph(6)
        assert po_double_from_ec(g).digest == po_double_from_ec(g.fork()).digest
