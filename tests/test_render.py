"""Tests for DOT/ASCII rendering (repro.graphs.render)."""

from __future__ import annotations

from repro.core.adversary import run_adversary
from repro.graphs.families import cycle_graph, single_node_with_loops
from repro.graphs.render import ascii_summary, to_dot, witness_pair_to_dot
from repro.matching.greedy_color import greedy_color_algorithm


class TestDot:
    def test_structure(self):
        dot = to_dot(cycle_graph(4))
        assert dot.startswith("graph G {")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == 4

    def test_loops_render_as_self_edges(self):
        dot = to_dot(single_node_with_loops(2))
        assert dot.count(" -- ") == 2
        # both endpoints of a loop line are the same id
        loop_lines = [l for l in dot.splitlines() if " -- " in l]
        for line in loop_lines:
            left, right = line.strip().split(" -- ")
            assert left == right.split(" ")[0]

    def test_highlighting(self):
        g = single_node_with_loops(3)
        dot = to_dot(g, highlight_nodes=[0], highlight_color=2)
        assert "doublecircle" in dot
        assert "penwidth=3" in dot

    def test_colors_assigned_consistently(self):
        g = cycle_graph(6)
        dot = to_dot(g)
        # 2 colours used -> exactly 2 distinct hex colours in edge lines
        hexes = {part.split('"')[1] for part in dot.splitlines() if 'color="#' in part for part in [part[part.index('color="') + 6:]]}
        assert len(hexes) == 2


class TestWitnessDot:
    def test_step_renders_both_graphs(self):
        witness = run_adversary(greedy_color_algorithm(), 4)
        dot = witness_pair_to_dot(witness.steps[-1])
        assert "graph G2" in dot and "graph H2" in dot
        assert "// step 2" in dot
        assert "doublecircle" in dot


class TestAscii:
    def test_summary_lines(self):
        g = single_node_with_loops(2)
        text = ascii_summary(g)
        assert "deg=2" in text
        assert "@" in text  # loop marker

    def test_all_nodes_listed(self):
        g = cycle_graph(5)
        text = ascii_summary(g)
        assert len(text.splitlines()) == 5
