"""Tests for the interned-label table (repro.graphs.labels).

The table is the substrate of the SoA kernel core: dense ids feed the
columnar snapshots, the repr-bytes memo feeds canonical sort keys, and the
node/edge token memos feed the ``KERNEL_DIGEST_VERSION`` digests.  These
tests pin the byte-level contract: tokens are exactly the historical
SHA-256 payloads, interning is by equality, and clearing the table can
never change a digest — only force recomputation.
"""

from __future__ import annotations

import hashlib

from repro.graphs.families import cycle_graph, random_loopy_tree
from repro.graphs.labels import LABELS, LabelTable
from repro.graphs.serialize import decode_label, encode_label, graph_from_json, graph_to_json

#: every label shape the construction produces: small ints (colours),
#: strings, None, and the adversary's arbitrarily nested tagged tuples
LABEL_KINDS = [
    0,
    7,
    -3,
    "r",
    "",
    None,
    (0, "x"),
    (1, (0, ("deep", 2))),
    ((),),
    ("mix", 0, None, ("t",)),
]


class TestIntern:
    def test_every_label_kind_round_trips(self):
        table = LabelTable()
        for label in LABEL_KINDS:
            lid = table.intern(label)
            assert table.label_for(lid) == label
            assert table.repr_bytes(label) == repr(label).encode("utf-8")
            assert table.repr_bytes_of(lid) == repr(label).encode("utf-8")

    def test_ids_are_dense_in_first_seen_order(self):
        table = LabelTable()
        lids = [table.intern(label) for label in LABEL_KINDS]
        assert lids == list(range(len(LABEL_KINDS)))
        assert len(table) == len(LABEL_KINDS)

    def test_equal_labels_share_one_id(self):
        table = LabelTable()
        a = table.intern((0, ("x", 1)))
        b = table.intern((0,) + (("x", 1),))  # equal, separately constructed
        assert a == b
        assert len(table) == 1


class TestDigestTokens:
    def test_node_token_is_the_historical_payload(self):
        table = LabelTable()
        for label in LABEL_KINDS:
            payload = b"node\x00" + repr(label).encode("utf-8")
            expected = int.from_bytes(hashlib.sha256(payload).digest(), "big")
            assert table.node_token(label) == expected
            # memoized: the second call must agree
            assert table.node_token(label) == expected

    def test_edge_token_is_the_historical_payload(self):
        table = LabelTable()
        u, v, c = (0, "a"), (0, "b"), 3
        a, b = sorted((repr(u).encode("utf-8"), repr(v).encode("utf-8")))
        payload = b"edge\x00" + a + b"\x00" + b + b"\x00" + repr(c).encode("utf-8")
        expected = int.from_bytes(hashlib.sha256(payload).digest(), "big")
        assert table.edge_token((u, v), c, directed=False) == expected

    def test_undirected_token_is_orientation_free(self):
        table = LabelTable()
        assert table.edge_token(("u", "v"), 1, directed=False) == table.edge_token(
            ("v", "u"), 1, directed=False
        )

    def test_directed_token_keeps_tail_head_order(self):
        table = LabelTable()
        fwd = table.edge_token(("u", "v"), 1, directed=True)
        rev = table.edge_token(("v", "u"), 1, directed=True)
        assert fwd != rev
        # and the directed payload uses the ``arc`` tag, so even a
        # self-symmetric orientation differs from the undirected token
        assert table.edge_token(("u", "u"), 1, directed=True) != table.edge_token(
            ("u", "u"), 1, directed=False
        )


class TestClearAndOverflow:
    def test_clear_bumps_generation_and_empties(self):
        table = LabelTable()
        table.intern("x")
        table.node_token("x")
        generation = table.generation
        table.clear()
        assert table.generation == generation + 1
        assert len(table) == 0
        # ids restart densely after a clear
        assert table.intern("y") == 0

    def test_overflow_self_clears(self):
        table = LabelTable(limit=2)
        table.intern("a")
        table.intern("b")
        assert table.generation == 0
        lid = table.intern("c")  # third distinct label trips the limit
        assert table.generation == 1
        assert lid == 0
        assert len(table) == 1
        # re-interning an existing label never clears
        assert table.intern("c") == 0
        assert table.generation == 1

    def test_kernel_digests_are_invariant_under_table_clear(self):
        """Tokens are pure functions of the label, so a clear only costs
        recomputation — the process-wide table may reset at any time."""
        before = random_loopy_tree(5, 2, seed=7).kernel.digest
        LABELS.clear()
        after = random_loopy_tree(5, 2, seed=7).kernel.digest
        assert before == after

    def test_golden_digest_pinned(self):
        """Byte-compat anchor: the digest of a fixture graph must never move
        while ``KERNEL_DIGEST_VERSION`` stays at v1 (the SoA refactor, the
        label table and any future memo must all reproduce it exactly)."""
        assert (
            cycle_graph(4).kernel.digest
            == "a080291dd92e0423b6ada58a82c5e4aa86908d6cb22bb09afd341c520001cd49"
        )
        assert (
            random_loopy_tree(5, 2, seed=7).kernel.digest
            == "2b37ab7efad95f9839cd2cb12ecc536c3db30fda336dcfb70dc4ed24a231464d"
        )


class TestV2Codec:
    """The v2 tagged-label codec must stay the exact inverse pair the label
    table's repr-serialisation sits next to (engine cache entries and graph
    documents share it)."""

    def test_every_label_kind_round_trips_through_codec(self):
        for label in LABEL_KINDS:
            assert decode_label(encode_label(label)) == label

    def test_encode_decode_equality_on_nested_forms(self):
        form = ((1, "loop"), (2, ((3, "cut"),)), (100, ()))
        assert decode_label(encode_label(form)) == form

    def test_graph_round_trip_preserves_digest(self):
        g = random_loopy_tree(4, 1, seed=3)
        nested = g.relabel({v: (0, ("x", v)) for v in g.nodes()})
        back = graph_from_json(graph_to_json(nested))
        assert back.kernel.digest == nested.kernel.digest
