"""Tests for factor graphs via colour refinement (repro.graphs.factor)."""

from __future__ import annotations

from repro.graphs.factor import factor_graph, stable_partition
from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_loopy_tree,
    single_node_with_loops,
)
from repro.graphs.lifts import is_covering_map_ec, random_two_lift
from repro.graphs.multigraph import ECGraph


class TestStablePartition:
    def test_symmetric_cycle_collapses(self):
        """An even cycle with alternating colours is vertex-transitive up to
        colour: the refinement has a single class (or two, by parity)."""
        g = cycle_graph(6)
        cls = stable_partition(g)
        assert len(set(cls.values())) <= 2

    def test_path_ends_distinguished(self):
        g = path_graph(4)
        cls = stable_partition(g)
        assert cls[0] != cls[1]

    def test_loops_in_signature(self):
        g = ECGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "a", 2)
        cls = stable_partition(g)
        assert cls["a"] != cls["b"]


class TestFactorGraph:
    def test_projection_is_covering_map(self):
        for g in (cycle_graph(6), path_graph(5), random_loopy_tree(5, 1, seed=0)):
            fg, alpha = factor_graph(g)
            assert is_covering_map_ec(g, fg, alpha)

    def test_single_node_with_loops_is_own_factor(self):
        g = single_node_with_loops(3)
        fg, _ = factor_graph(g)
        assert fg.num_nodes() == 1
        assert fg.loop_count(fg.nodes()[0]) == 3

    def test_even_cycle_factors_to_loops(self):
        """Figure 3 flavour: a 2-coloured even cycle factors onto a single
        node (or an edge), with the cycle structure absorbed into loops or a
        doubled edge."""
        g = cycle_graph(4)  # alternating colours 1,2
        fg, alpha = factor_graph(g)
        assert fg.num_nodes() <= 2
        assert is_covering_map_ec(g, fg, alpha)

    def test_unfolded_loop_refolds(self):
        """Unfolding a loop then factoring recovers a graph of the original size."""
        from repro.graphs.lifts import unfold_loop

        g = single_node_with_loops(2)
        gg, _, _ = unfold_loop(g, g.loops_at(0)[0].eid)
        fg, _ = factor_graph(gg)
        assert fg.num_nodes() == 1
        # the factor of GG is G itself: 2 loops
        assert fg.loop_count(fg.nodes()[0]) == 2

    def test_factor_of_random_lift_matches_base_size(self, rng):
        g = random_loopy_tree(4, 1, seed=5)
        fg_base, _ = factor_graph(g)
        lifted, _ = random_two_lift(g, rng)
        fg_lift, _ = factor_graph(lifted)
        # factoring a lift cannot give something bigger than the base factor
        assert fg_lift.num_nodes() <= g.num_nodes()

    def test_asymmetric_graph_is_own_factor(self):
        g = path_graph(3)
        fg, alpha = factor_graph(g)
        assert fg.num_nodes() == 3  # ends differ from middle, ends differ by colour


class TestPOFactor:
    def test_po_factor_is_covering(self):
        from repro.graphs.factor import factor_graph_po
        from repro.graphs.lifts import is_covering_map_po
        from repro.graphs.ports import po_double_from_ec
        from repro.graphs.families import cycle_graph, path_graph, single_node_with_loops

        for base in (cycle_graph(6), path_graph(4), single_node_with_loops(2)):
            d = po_double_from_ec(base)
            fg, alpha = factor_graph_po(d)
            assert is_covering_map_po(d, fg, alpha)

    def test_doubled_even_cycle_collapses(self):
        """Figure 3 flavour in PO: the doubled even cycle is vertex-transitive
        up to colours, so its PO factor is a single node with directed loops."""
        from repro.graphs.factor import factor_graph_po
        from repro.graphs.ports import po_double_from_ec
        from repro.graphs.families import cycle_graph

        d = po_double_from_ec(cycle_graph(6))
        fg, _ = factor_graph_po(d)
        assert fg.num_nodes() == 1
        node = fg.nodes()[0]
        assert fg.degree(node) == d.max_degree()

    def test_asymmetric_po_graph_refines(self):
        from repro.graphs.factor import factor_graph_po
        from repro.graphs.digraph import POGraph

        g = POGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "c", 2)
        fg, _ = factor_graph_po(g)
        assert fg.num_nodes() == 3

    def test_po_directed_loop_vs_cycle(self):
        """A directed loop and a directed 2-cycle of one colour have the
        same factor: one node with a directed loop."""
        from repro.graphs.factor import factor_graph_po
        from repro.graphs.digraph import POGraph

        cyc = POGraph()
        cyc.add_edge(0, 1, 1)
        cyc.add_edge(1, 0, 1)
        fg, _ = factor_graph_po(cyc)
        assert fg.num_nodes() == 1
        assert fg.loop_count(fg.nodes()[0]) == 1
