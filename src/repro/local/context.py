"""Per-node execution context for the LOCAL simulator.

A node algorithm observes only what its model permits (paper, Sections 1.4
and 3): its ports (edge colours for EC, directed colour slots for PO,
neighbour identifiers for ID), its own identifier in the ID model, and any
globally known parameters (the LOCAL model traditionally grants knowledge of
global bounds such as the maximum degree ``Delta`` or the palette size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Hashable, Mapping, Optional, Tuple

Node = Hashable
Port = Hashable

__all__ = ["NodeContext"]


@dataclass(frozen=True)
class NodeContext:
    """What a single node can see locally.

    Attributes
    ----------
    node:
        The node's label.  Anonymous-model algorithms must not use it as
        information (it is exposed for bookkeeping only); the test-suite's
        lift-invariance checks catch violations.
    model:
        One of ``"EC"``, ``"PO"``, ``"ID"``.
    ports:
        Deterministically ordered tuple of port labels.  EC: incident edge
        colours (a loop contributes its colour once, and messages sent on it
        echo back).  PO: pairs ``("out", c)`` / ``("in", c)`` (a directed
        loop contributes both).  ID: identifiers of adjacent nodes.
    identifier:
        The node's unique identifier (ID model only, else ``None``).
    globals:
        Read-only globally known parameters, e.g. ``{"delta": 5}``.  Stored
        as a :class:`types.MappingProxyType` over a private copy, so the
        "read-only" in the contract is enforced, not advisory: neither the
        algorithm nor later mutation of the caller's dict can change what a
        node sees.
    """

    node: Node
    model: str
    ports: Tuple[Port, ...]
    identifier: Optional[int] = None
    globals: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.globals, MappingProxyType):
            object.__setattr__(self, "globals", MappingProxyType(dict(self.globals)))

    @property
    def degree(self) -> int:
        """The node's degree in its model's convention (= number of ports)."""
        return len(self.ports)
