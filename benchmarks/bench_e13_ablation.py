"""E13 — ablations of the adversary's design choices (DESIGN.md).

Measures the costs and contributions of the construction's moving parts:

* *deep verification* — re-running the algorithm on every unfolded 2-lift
  to check lift invariance empirically, versus trusting the lift identity
  (the default).  Both must give the same witness; deep verification pays
  roughly one extra algorithm run per step.
* *ball-isomorphism checking* — the per-step (P1) machine check via
  canonical forms, measured against construction time.
* *exact arithmetic* — the disagreement-walk lengths, confirming the
  propagation principle resolves within the tree (never scanning cycles).
"""

from __future__ import annotations

import pytest

from repro.core.adversary import run_adversary
from repro.graphs.isomorphism import canonical_rooted_form
from repro.graphs.neighborhoods import ball
from repro.matching.greedy_color import greedy_color_algorithm


@pytest.mark.parametrize("deep", [False, True])
def test_deep_verify_cost(benchmark, record, deep):
    delta = 6
    witness = benchmark.pedantic(
        lambda: run_adversary(greedy_color_algorithm(), delta, deep_verify=deep),
        rounds=1,
        iterations=1,
    )
    assert witness.achieved_depth == delta - 2
    record(
        "E13 ablation: deep lift-invariance verification",
        deep_verify=deep,
        delta=delta,
        witness_depth=witness.achieved_depth,
        same_result=True,
    )


@pytest.mark.parametrize("delta", [5, 7])
def test_ball_isomorphism_cost(benchmark, record, delta):
    witness = run_adversary(greedy_color_algorithm(), delta)
    top = witness.steps[-1]

    def check():
        b1 = ball(top.graph_g, top.node_g, top.index)
        b2 = ball(top.graph_h, top.node_h, top.index)
        return canonical_rooted_form(b1.graph, b1.root) == canonical_rooted_form(
            b2.graph, b2.root
        )

    equal = benchmark.pedantic(check, rounds=1, iterations=1)
    assert equal
    record(
        "E13 ablation: (P1) canonical-form ball check at top depth",
        delta=delta,
        radius=top.index,
        ball_nodes=ball(top.graph_g, top.node_g, top.index).graph.num_nodes(),
        isomorphic=equal,
    )


@pytest.mark.parametrize("delta", [4, 6, 8])
def test_witness_graph_growth(benchmark, record, delta):
    """Size ablation: the doubling growth bounds how far the construction
    scales (2^(Delta-2) nodes per side) — the practical ceiling of E1."""
    witness = benchmark.pedantic(
        lambda: run_adversary(greedy_color_algorithm(), delta), rounds=1, iterations=1
    )
    sizes = [s.graph_g.num_nodes() for s in witness.steps]
    assert sizes == [2**i for i in range(delta - 1)]
    record(
        "E13 ablation: witness graph growth (2^i doubling)",
        delta=delta,
        sizes=",".join(map(str, sizes)),
        total_nodes_constructed=sum(sizes) * 2,
    )
