"""The ``SweepExecutor`` protocol: where shards run is an interface.

:func:`repro.engine.run_sweep` owns everything a sweep *means* — sharding,
the :class:`~repro.engine.store.ResultStore`, progress emission, resume and
dedup bookkeeping, and the dead-worker recovery policy.  An executor owns
exactly one thing: getting a shard payload executed somewhere and the
outcome back.  Three backends ship (``docs/engine.md`` documents how to
write a fourth):

* :class:`~repro.engine.executors.inline.InlineExecutor` — in-process on an
  asyncio loop, zero spawn; the default for smoke grids and unit tests;
* :class:`~repro.engine.executors.process.ProcessExecutor` — the original
  spawn-context process pool, now a thin adapter;
* :class:`~repro.engine.executors.sockets.SocketExecutor` — a stdlib
  multi-host backend speaking JSON over sockets, with per-worker memory
  budgeting.

The conformance contract (``tests/test_executors.py``) is the same for all
of them: rows byte-identical to the serial baseline, and every fault kind
the backend's :class:`ExecutorCapabilities` declares must be survived with
byte-identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..faults import FAULT_KINDS
from .shard import run_shard

__all__ = [
    "BACKENDS",
    "ExecutionOptions",
    "ExecutorCapabilities",
    "ExecutorContext",
    "SweepExecutor",
    "as_executor",
]

#: one shard's result: ``(shard_index, rows, trace_document, cache_stats)``
ShardOutcome = Tuple[int, List[dict], dict, dict]
#: a shard that did not finish: ``(payload, exception)``
ShardFailure = Tuple[dict, BaseException]


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What a backend can do; the driver adapts its policy to these flags.

    Attributes
    ----------
    parallel:
        The backend runs a round's shards concurrently.  ``False`` makes
        the driver hand it one shard at a time (the serial baseline path).
    separate_process:
        Shards execute in their own OS process.  Only then may the fault
        injector arm the *real* ``SIGKILL`` trigger for ``kill-worker``
        faults; in-process backends degrade the kill to a raised
        :class:`~repro.engine.faults.InjectedWorkerError`, which exercises
        the same coordinator recovery path without shooting the test
        process.
    supports_on_row:
        The per-row progress callback reaches the driver live.  Backends
        without it are observed by the store-polling progress monitor
        instead; rows are byte-identical either way.
    fault_kinds:
        The fault classes this backend declares survivable — its
        conformance contract.  The mandatory trigger points
        (``on_worker_cell``, ``on_cell_body``, ``on_store_append``,
        ``on_cache_write``/``check_cache_io``) live in the shared shard
        runtime, so every backend inherits them; only the kill *mechanism*
        (signal vs raise) is backend-specific.
    """

    parallel: bool
    separate_process: bool
    supports_on_row: bool
    fault_kinds: frozenset = frozenset(FAULT_KINDS)


class SweepExecutor:
    """Base class / protocol every sweep backend implements.

    The driver's calls, in order:

    1. :meth:`start` once, before the first round;
    2. :meth:`run_round` once per (recovery) round with that round's shard
       payloads — the default implementation submits them sequentially
       through :meth:`submit_shard`, so a minimal backend only overrides
       that one primitive;
    3. :meth:`is_worker_loss` to triage each failure (worker death, which
       recovery reassigns, vs a named cell error, which aborts);
    4. :meth:`close` exactly once, however the sweep ends.

    ``run_round`` must never raise for a shard failure: it returns
    ``(outcomes, failures)`` and lets the driver apply the recovery policy.
    """

    #: registry name; also reported in ``SweepResult.backend``
    name: str = "base"
    #: shard fan-out of a parallel round (1 for serial backends)
    width: int = 1
    capabilities = ExecutorCapabilities(
        parallel=False, separate_process=False, supports_on_row=True
    )

    def start(self, ctx: "ExecutorContext") -> None:
        """Lifecycle hook: acquire backend resources before the first round."""

    def submit_shard(self, payload: dict, ctx: "ExecutorContext") -> ShardOutcome:
        """Execute one shard payload and return its outcome.

        The base implementation runs the shared shard runtime in-process,
        forwarding the progress callback when the capabilities allow it.
        """
        on_row = ctx.on_row if self.capabilities.supports_on_row else None
        return run_shard(payload, on_row)

    def run_round(
        self, payloads: List[dict], ctx: "ExecutorContext"
    ) -> Tuple[List[ShardOutcome], List[ShardFailure]]:
        """Execute one round of shards; never raises on shard failure."""
        outcomes: List[ShardOutcome] = []
        failures: List[ShardFailure] = []
        for payload in payloads:
            try:
                outcomes.append(self.submit_shard(payload, ctx))
            except BaseException as exc:  # noqa: BLE001 - triaged by the driver
                failures.append((payload, exc))
        return outcomes, failures

    def is_worker_loss(self, exc: BaseException) -> bool:
        """Whether a shard failure means the worker itself died."""
        from ..faults import InjectedWorkerError

        return isinstance(exc, InjectedWorkerError)

    def close(self) -> None:
        """Lifecycle hook: release backend resources; idempotent."""


@dataclass(frozen=True)
class ExecutorContext:
    """Per-round driver context handed to executor calls.

    ``on_row`` is the sweep's per-row progress callback (``None`` on rounds
    observed by the polling monitor); ``workers`` is the requested worker
    count, which backends may use to size their pools.
    """

    workers: int = 0
    on_row: Optional[Callable[[dict, object], None]] = None


@dataclass(frozen=True)
class ExecutionOptions:
    """The validated execution-control vocabulary shared by sweep and bench.

    One object backs both CLI subcommands (``--workers``, ``--backend``,
    ``--hosts``, ``--cell-timeout``, ``--retries``, ``--max-restarts``) and
    the :mod:`repro.api` facade, so the constraints are checked in exactly
    one place: at least one worker, non-negative timeouts and budgets, a
    known backend name, and ``hosts`` only where it means something.
    """

    workers: int = 1
    backend: Optional[str] = None
    hosts: Tuple[Tuple[str, int], ...] = ()
    cell_timeout: Optional[float] = None
    retries: int = 1
    max_restarts: int = 2

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers} (serial runs are "
                f"workers=1 on the inline backend)"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from "
                f"{', '.join(sorted(BACKENDS))}"
            )
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {self.cell_timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.hosts and self.backend != "socket":
            raise ValueError(
                f"hosts only apply to the socket backend, not {self.backend!r}"
            )

    def engine_kwargs(self) -> dict:
        """The ``run_sweep`` keyword arguments this option set spells."""
        kwargs = {
            "workers": self.workers,
            "backend": self.backend,
            "cell_timeout": self.cell_timeout,
            "retries": self.retries,
            "max_restarts": self.max_restarts,
        }
        if self.hosts:
            kwargs["hosts"] = list(self.hosts)
        return kwargs


def _make_inline(workers: int, hosts, memory_budget) -> SweepExecutor:
    from .inline import InlineExecutor

    return InlineExecutor()


def _make_process(workers: int, hosts, memory_budget) -> SweepExecutor:
    from .process import ProcessExecutor

    return ProcessExecutor(workers=workers)


def _make_socket(workers: int, hosts, memory_budget) -> SweepExecutor:
    from .sockets import SocketExecutor

    if memory_budget is not None:
        return SocketExecutor(workers=workers, hosts=hosts, memory_budget=memory_budget)
    return SocketExecutor(workers=workers, hosts=hosts)


#: backend name -> factory; the CLI's ``--backend`` choices come from here
BACKENDS = {
    "inline": _make_inline,
    "process": _make_process,
    "socket": _make_socket,
}


def as_executor(
    backend,
    *,
    workers: int = 0,
    hosts=None,
    memory_budget=None,
) -> SweepExecutor:
    """Resolve ``backend`` (name, instance or ``None``) to an executor.

    ``None`` keeps the historical behaviour: ``workers >= 2`` selects the
    process pool, anything less runs inline — so ``run_sweep(workers=0)``
    is still the serial baseline and ``run_sweep(workers=4)`` still spawns.
    """
    if isinstance(backend, SweepExecutor):
        return backend
    if backend is None:
        backend = "process" if workers >= 2 else "inline"
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(sorted(BACKENDS))}"
        ) from None
    if hosts is not None and backend != "socket":
        raise ValueError(f"hosts only apply to the socket backend, not {backend!r}")
    if memory_budget is not None and backend != "socket":
        raise ValueError(
            f"memory_budget only applies to the socket backend, not {backend!r}"
        )
    return factory(workers, hosts, memory_budget)
