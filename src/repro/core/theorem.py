"""Theorem 1, end to end (paper, Section 5.5).

Reasoning backwards from a claimed ``t``-time ID-algorithm for maximal FM on
graphs of maximum degree ``Delta``:

* **OI <= ID** — Corollary 9 turns it into an OI-algorithm correct on
  canonically ordered covers of loopy PO-graphs (:class:`OIFromID`);
* **PO <= OI** — the Section 5.3 simulation turns that into a PO-algorithm
  on loopy PO-graphs (:class:`POFromOI`);
* **EC <= PO** — the Section 5.1 doubling turns that into an EC-algorithm
  on loopy EC-graphs of maximum degree ``Delta / 2`` (:class:`ECFromPO`);
* **Section 4** — the unfold-and-mix adversary then certifies run-time
  ``> Delta/2 - 2`` for the EC-algorithm, hence ``Omega(Delta)`` for the
  original.

:func:`refute` runs the pipeline against a *concrete* algorithm and returns
a machine-checked refutation: either the algorithm's outputs are not maximal
FMs somewhere (with a certificate), or its outputs at two nodes with
isomorphic radius-``t`` views differ (with the witnessing graph pair) —
contradicting the claimed run-time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Sequence

from ..local.algorithm import DistributedAlgorithm, ECWeightAlgorithm, POWeightAlgorithm
from ..obs.tracer import current_tracer
from .adversary import run_adversary
from .sim_ec_po import ECFromPO
from .sim_oi_id import OIFromID
from .sim_po_oi import OIAlgorithm, POFromOI
from .witness import AlgorithmFailure, LowerBoundWitness, StepWitness

__all__ = [
    "Refutation",
    "chain_from_name",
    "chain_id_to_ec",
    "chain_oi_to_ec",
    "chain_po_to_ec",
    "refute",
]


@dataclass
class Refutation:
    """Outcome of testing a claimed fast maximal-FM algorithm.

    ``kind`` is ``"incorrect-output"`` when the algorithm failed to produce a
    maximal FM on some constructed graph (``failure`` holds the certificate),
    or ``"locality-violation"`` when the algorithm is correct but its outputs
    distinguish isomorphic radius-``t`` views (``step`` holds the witness
    pair), or ``"consistent"`` when the claimed run-time exceeds what the
    construction can refute (``Delta - 2``).
    """

    algorithm: str
    claimed_rounds: int
    delta: int
    kind: str
    witness: Optional[LowerBoundWitness] = None
    step: Optional[StepWitness] = None
    failure: Optional[AlgorithmFailure] = None

    def summary(self) -> str:
        """One-line account of the refutation."""
        if self.kind == "incorrect-output":
            return (
                f"{self.algorithm} claimed {self.claimed_rounds} rounds but is not "
                f"a correct maximal-FM algorithm: {self.failure}"
            )
        if self.kind == "locality-violation":
            assert self.step is not None
            return (
                f"{self.algorithm} claimed {self.claimed_rounds} rounds but its "
                f"outputs differ on isomorphic radius-{self.step.index} views "
                f"(weights {self.step.weight_g} vs {self.step.weight_h} on loop "
                f"colour {self.step.color!r})"
            )
        return (
            f"{self.algorithm}: claim of {self.claimed_rounds} rounds is beyond the "
            f"construction's reach on degree-{self.delta} graphs (> {self.delta - 2})"
        )


def chain_po_to_ec(po_algorithm: POWeightAlgorithm) -> ECWeightAlgorithm:
    """EC <= PO: one link of the Section 5.5 chain."""
    return ECFromPO(po_algorithm)


def chain_oi_to_ec(oi_algorithm: OIAlgorithm) -> ECWeightAlgorithm:
    """EC <= PO <= OI: two links of the chain."""
    return ECFromPO(POFromOI(oi_algorithm))


def chain_id_to_ec(
    id_algorithm: DistributedAlgorithm,
    t: int,
    id_pool: Sequence[int],
    globals_factory: Optional[Callable[..., Dict[str, Any]]] = None,
) -> ECWeightAlgorithm:
    """EC <= PO <= OI <= ID: the full chain of Section 5.5.

    ``id_pool`` plays the role of the sparse identifier set ``J`` from
    Lemma 7 (obtain it from :func:`repro.core.sim_oi_id.
    extract_order_invariant_ids` + :func:`repro.local.identifiers.
    sparse_subset` for genuinely identifier-sensitive algorithms, or pass
    any large pool for algorithms that are order-invariant by construction).
    """
    oi = OIFromID(id_algorithm, t, id_pool, globals_factory=globals_factory)
    return ECFromPO(POFromOI(oi))


def chain_from_name(
    chain: str,
    *,
    t: int,
    base: Optional[DistributedAlgorithm] = None,
    id_pool=None,
) -> ECWeightAlgorithm:
    """Build the chain named ``chain`` in front of a base machine.

    The shared vocabulary of the CLI (``--chain``), :func:`repro.api.refute`
    and the sweep engine: ``"ec"`` runs the machine directly, ``"po"`` /
    ``"oi"`` / ``"id"`` stack one, two or all three Section 5 simulations in
    front of it.  ``base`` defaults to the proposal dynamics in the model
    the chain starts from (the one shipped machine with EC, PO and ID
    presentations); ``t`` bounds the OI/ID simulations' view radius and
    ``id_pool`` overrides Lemma 7's identifier pool for the full chain.
    """
    from ..local.algorithm import SimulatedECWeights, SimulatedPOWeights
    from ..matching.proposal import ProposalFM
    from .sim_po_oi import SymmetricOIAdapter

    if chain == "ec":
        return SimulatedECWeights(base if base is not None else ProposalFM("EC"))
    if chain == "po":
        return chain_po_to_ec(
            SimulatedPOWeights(base if base is not None else ProposalFM("PO"))
        )
    if chain == "oi":
        return chain_oi_to_ec(
            SymmetricOIAdapter(base if base is not None else ProposalFM("PO"), t=t)
        )
    if chain == "id":
        if id_pool is None:
            id_pool = lambda n: [1000 + 7 * i for i in range(n)]  # noqa: E731
        return chain_id_to_ec(
            base if base is not None else ProposalFM("ID"), t=t, id_pool=id_pool
        )
    raise ValueError(f"unknown chain {chain!r}; choose from ('ec', 'po', 'oi', 'id')")


def refute(
    algorithm: ECWeightAlgorithm,
    claimed_rounds: int,
    delta: int,
    deep_verify: bool = False,
    tracer=None,
) -> Refutation:
    """Test the claim "``algorithm`` computes maximal FM in ``claimed_rounds``
    rounds on EC-graphs of maximum degree ``delta``".

    Runs the Section 4 adversary.  If the algorithm's output is ever not a
    maximal FM, returns an ``incorrect-output`` refutation with the
    certificate.  Otherwise the adversary reaches depth ``delta - 2``; if
    ``claimed_rounds <= delta - 2`` the step witness at index
    ``claimed_rounds`` — isomorphic radius-``claimed_rounds`` views with
    different outputs — refutes the run-time claim.

    ``tracer`` wraps the whole pipeline in one ``theorem.refute`` span; the
    adversary and any ``sim.*`` chain layers the algorithm is built from
    nest inside it, making the per-layer overhead of EC ⇐ PO ⇐ OI ⇐ ID
    directly measurable.
    """
    tracer = tracer if tracer is not None else current_tracer()
    with tracer.span(
        "theorem.refute",
        algorithm=algorithm.name,
        claimed_rounds=claimed_rounds,
        delta=delta,
    ) as span:
        try:
            witness = run_adversary(algorithm, delta, deep_verify=deep_verify, tracer=tracer)
        except AlgorithmFailure as failure:
            span.set(kind="incorrect-output")
            return Refutation(
                algorithm=algorithm.name,
                claimed_rounds=claimed_rounds,
                delta=delta,
                kind="incorrect-output",
                failure=failure,
            )
        if claimed_rounds <= witness.achieved_depth:
            step = next(s for s in witness.steps if s.index == claimed_rounds)
            span.set(kind="locality-violation")
            return Refutation(
                algorithm=algorithm.name,
                claimed_rounds=claimed_rounds,
                delta=delta,
                kind="locality-violation",
                witness=witness,
                step=step,
            )
        span.set(kind="consistent")
        return Refutation(
            algorithm=algorithm.name,
            claimed_rounds=claimed_rounds,
            delta=delta,
            kind="consistent",
            witness=witness,
        )
