"""``suppression-hygiene`` — every exemption must still earn its keep.

Suppressions and markers are reviewed, load-bearing exemptions from the
model contracts; once the code under them changes, a stale exemption is a
hole waiting for the next edit to fall through.  This rule audits all of
them against the *raw* (pre-suppression) findings of the same run:

* a ``# repro: noqa[...]`` that silences nothing — no raw finding of a
  listed rule anchors inside its statement — is flagged as unused;
* a noqa naming a rule id that does not exist is flagged (it will never
  silence anything, usually a typo like ``exact-arith`` vs ``exactarith``);
* a module marker (``# repro: randomized|clock|workers|state``) on a
  module that is *also* listed in the matching :class:`LintConfig` set is
  redundant; one on a module whose functions never even *raw-direct* the
  corresponding effect is stale — the exemption outlived the code;
* staleness is only judged when every rule the suppression could silence
  was actually selected for this run, so ``select=...`` runs never produce
  false "unused" reports.

Findings of this rule are exempt from noqa suppression — a stale noqa must
not be able to silence its own staleness report.  A justified-but-idle
suppression (kept deliberately, e.g. for a platform-dependent branch)
belongs in the committed lint baseline instead.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding

RULE_ID = "suppression-hygiene"

#: marker kind -> (LintConfig attribute, effect whose presence justifies it)
_MARKERS = {
    "randomized": ("randomized_modules", "entropy"),
    "clock": ("clock_modules", "clock"),
    "workers": ("worker_modules", "worker-spawn"),
    "state": ("state_modules", "global-mutation"),
}


def check(project) -> Iterator[Finding]:
    """Flag unused noqas, unknown rule ids, redundant/stale markers."""
    from . import ALL_RULES

    known = set(ALL_RULES) | {"syntax"}
    selected = set(project.selected)
    raw_by_path: dict = {}
    for finding in project.raw_findings:
        if finding.rule != RULE_ID:
            raw_by_path.setdefault(finding.path, []).append(finding)

    for mod in project.modules:
        raw = raw_by_path.get(mod.path, [])

        for noqa in mod.noqa_comments():
            if noqa.rules is not None:
                for unknown in sorted(noqa.rules - known):
                    yield Finding(
                        path=mod.path,
                        line=noqa.line,
                        col=1,
                        rule=RULE_ID,
                        message=(
                            f"noqa names unknown rule '{unknown}' and can "
                            f"never silence anything; known rules: "
                            f"{', '.join(sorted(known))}"
                        ),
                    )
            could_silence = (noqa.rules or known) & set(ALL_RULES)
            if not could_silence <= selected:
                continue  # partial run: cannot judge staleness
            used = False
            for finding in raw:
                if noqa.rules is not None and finding.rule not in noqa.rules:
                    continue
                if noqa.line in mod.suppression_lines(finding.line):
                    used = True
                    break
            if not used:
                # a noqa the effect analysis consumed (it sanctioned a
                # direct effect site) is used, even though the sanction
                # means no raw finding ever anchored there
                for line, rule in project.effects.sanctioned_sites.get(mod.module, []):
                    if noqa.rules is not None and rule not in noqa.rules:
                        continue
                    if noqa.line in mod.suppression_lines(line):
                        used = True
                        break
            if not used:
                listed = "" if noqa.rules is None else f"[{', '.join(sorted(noqa.rules))}]"
                yield Finding(
                    path=mod.path,
                    line=noqa.line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"unused suppression '# repro: noqa{listed}': no "
                        f"finding anchors inside its statement; remove it or "
                        f"move it to the line it is meant to cover"
                    ),
                )

        for kind, (config_attr, effect) in _MARKERS.items():
            if not mod.has_marker(kind):
                continue
            line = mod.markers()[kind]
            if mod.module in getattr(project.config, config_attr):
                yield Finding(
                    path=mod.path,
                    line=line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"redundant marker '# repro: {kind}': module "
                        f"'{mod.module}' is already listed in "
                        f"LintConfig.{config_attr}"
                    ),
                )
            elif effect not in project.effects.module_raw_direct(mod.module):
                yield Finding(
                    path=mod.path,
                    line=line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"stale marker '# repro: {kind}': no function in "
                        f"'{mod.module}' has any direct '{effect}' effect; "
                        f"the exemption outlived the code it sanctioned"
                    ),
                )
