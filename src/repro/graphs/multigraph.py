"""Edge-coloured undirected multigraphs with loops (EC-graphs).

This module provides :class:`ECGraph`, the fundamental substrate of the
reproduction.  An EC-graph (paper, Section 3.3) is an undirected multigraph
whose edges carry a *proper* edge colouring: any two edges sharing an endpoint
have distinct colours.  Loops are allowed and follow the paper's convention
(Section 3.5, Figure 3): a loop contributes **+1** to the degree of its
endpoint and occupies exactly one colour slot there.

Because the colouring is proper, each node has *at most one* incident edge of
any given colour.  This rigidity is what makes the whole lower-bound machinery
tractable: radius-``t`` views are determined by colour walks, universal covers
unfold deterministically, and the simulator can use colours as ports.

Example
-------
>>> g = ECGraph()
>>> v = g.add_node("v")
>>> e1 = g.add_edge("v", "v", color=1)   # a loop of colour 1
>>> u = g.add_node("u")
>>> e2 = g.add_edge("v", "u", color=2)
>>> g.degree("v")
2
>>> sorted(g.incident_colors("v"))
[1, 2]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Node = Hashable
Color = int
EdgeId = int

__all__ = ["Edge", "ECGraph", "ImproperColoringError"]


class ImproperColoringError(ValueError):
    """Raised when an edge insertion would violate proper edge colouring."""


@dataclass(frozen=True)
class Edge:
    """An undirected coloured edge.

    Attributes
    ----------
    eid:
        Unique integer id of the edge within its graph.
    u, v:
        Endpoints.  For a loop, ``u == v``.
    color:
        The edge colour (a positive integer in all paper constructions).
    """

    eid: EdgeId
    u: Node
    v: Node
    color: Color

    @property
    def is_loop(self) -> bool:
        """Whether this edge is a loop (both endpoints equal)."""
        return self.u == self.v

    def endpoints(self) -> Tuple[Node, Node]:
        """Return the pair of endpoints ``(u, v)``."""
        return (self.u, self.v)

    def other(self, x: Node) -> Node:
        """Return the endpoint different from ``x`` (itself for a loop)."""
        if x == self.u:
            return self.v
        if x == self.v:
            return self.u
        raise KeyError(f"{x!r} is not an endpoint of edge {self.eid}")


class ECGraph:
    """A properly edge-coloured undirected multigraph with loops.

    The class enforces properness on insertion: adding an edge of colour ``c``
    at a node that already has an incident edge of colour ``c`` raises
    :class:`ImproperColoringError`.  A loop of colour ``c`` at ``v`` occupies
    the single colour-``c`` slot of ``v`` and counts +1 towards ``degree(v)``.

    Nodes may be any hashable values; edge ids are small integers assigned by
    the graph and stable across copies.
    """

    def __init__(self) -> None:
        self._edges: Dict[EdgeId, Edge] = {}
        # node -> color -> edge id  (properness: one edge per colour per node)
        self._slots: Dict[Node, Dict[Color, EdgeId]] = {}
        self._next_eid: EdgeId = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Add an isolated node (no-op if present).  Returns the node."""
        self._slots.setdefault(v, {})
        return v

    def add_edge(self, u: Node, v: Node, color: Color, eid: Optional[EdgeId] = None) -> EdgeId:
        """Add an edge of the given colour between ``u`` and ``v``.

        ``u == v`` creates a loop.  Raises :class:`ImproperColoringError` if
        either endpoint already has an incident edge of this colour.  An
        explicit ``eid`` may be supplied (used when copying graphs); it must
        be fresh.
        """
        self.add_node(u)
        self.add_node(v)
        if color in self._slots[u]:
            raise ImproperColoringError(
                f"node {u!r} already has an incident edge of colour {color}"
            )
        if u != v and color in self._slots[v]:
            raise ImproperColoringError(
                f"node {v!r} already has an incident edge of colour {color}"
            )
        if eid is None:
            eid = self._next_eid
        elif eid in self._edges:
            raise ValueError(f"edge id {eid} already in use")
        self._next_eid = max(self._next_eid, eid) + 1
        edge = Edge(eid, u, v, color)
        self._edges[eid] = edge
        self._slots[u][color] = eid
        if u != v:
            self._slots[v][color] = eid
        return eid

    def remove_edge(self, eid: EdgeId) -> Edge:
        """Remove the edge with id ``eid`` and return its record."""
        edge = self._edges.pop(eid)
        del self._slots[edge.u][edge.color]
        if not edge.is_loop:
            del self._slots[edge.v][edge.color]
        return edge

    def remove_node(self, v: Node) -> None:
        """Remove node ``v`` together with all incident edges."""
        for eid in [e.eid for e in self.incident_edges(v)]:
            self.remove_edge(eid)
        del self._slots[v]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """List of all nodes."""
        return list(self._slots.keys())

    def edges(self) -> List[Edge]:
        """List of all edge records."""
        return list(self._edges.values())

    def edge(self, eid: EdgeId) -> Edge:
        """The edge record with id ``eid``."""
        return self._edges[eid]

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node of this graph."""
        return v in self._slots

    def has_edge_id(self, eid: EdgeId) -> bool:
        """Whether an edge with id ``eid`` exists."""
        return eid in self._edges

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._slots)

    def num_edges(self) -> int:
        """Number of edges (loops count once)."""
        return len(self._edges)

    def degree(self, v: Node) -> int:
        """Degree of ``v``; loops count +1 (EC convention, paper Section 3.5)."""
        return len(self._slots[v])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        return max((len(s) for s in self._slots.values()), default=0)

    def incident_colors(self, v: Node) -> List[Color]:
        """Colours of edges incident to ``v`` (each appears once)."""
        return list(self._slots[v].keys())

    def incident_edges(self, v: Node) -> List[Edge]:
        """Edge records incident to ``v``, in colour order."""
        return [self._edges[eid] for _, eid in sorted(self._slots[v].items())]

    def edge_at(self, v: Node, color: Color) -> Optional[Edge]:
        """The unique colour-``color`` edge at ``v``, or ``None``."""
        eid = self._slots[v].get(color)
        return None if eid is None else self._edges[eid]

    def loops_at(self, v: Node) -> List[Edge]:
        """All loops incident to ``v``, in colour order."""
        return [e for e in self.incident_edges(v) if e.is_loop]

    def loop_count(self, v: Node) -> int:
        """Number of loops at ``v``."""
        return len(self.loops_at(v))

    def neighbors(self, v: Node) -> List[Node]:
        """Distinct neighbours of ``v`` (``v`` itself if it has a loop)."""
        seen: List[Node] = []
        for e in self.incident_edges(v):
            w = e.other(v)
            if w not in seen:
                seen.append(w)
        return seen

    def colors(self) -> List[Color]:
        """Sorted list of all colours used in the graph."""
        return sorted({e.color for e in self._edges.values()})

    def is_simple(self) -> bool:
        """Whether the graph has no loops and no parallel edges."""
        seen = set()
        for e in self._edges.values():
            if e.is_loop:
                return False
            key = frozenset((e.u, e.v))
            if key in seen:
                return False
            seen.add(key)
        return True

    def non_loop_edges(self) -> List[Edge]:
        """All edges that are not loops."""
        return [e for e in self._edges.values() if not e.is_loop]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node, max_dist: Optional[int] = None) -> Dict[Node, int]:
        """Breadth-first distances from ``source``.

        Loops never decrease distances (they connect a node to itself), so
        they are ignored for distance purposes.  If ``max_dist`` is given,
        exploration stops at that radius.
        """
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (max_dist is None or d < max_dist):
            d += 1
            nxt: List[Node] = []
            for v in frontier:
                for e in self.incident_edges(v):
                    w = e.other(v)
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        return dist

    def connected_components(self) -> List[List[Node]]:
        """Connected components as lists of nodes."""
        remaining = set(self._slots.keys())
        comps: List[List[Node]] = []
        while remaining:
            src = next(iter(remaining))
            comp = list(self.bfs_distances(src).keys())
            comps.append(comp)
            remaining.difference_update(comp)
        return comps

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        return len(self.connected_components()) <= 1

    def is_tree_ignoring_loops(self) -> bool:
        """Whether the graph with loops removed is a tree (paper property P3)."""
        non_loops = self.non_loop_edges()
        n = self.num_nodes()
        if len(non_loops) != n - 1:
            return False
        return self.is_connected()

    # ------------------------------------------------------------------
    # copying / combining
    # ------------------------------------------------------------------
    def copy(self) -> "ECGraph":
        """Deep copy preserving node labels and edge ids."""
        g = ECGraph()
        for v in self._slots:
            g.add_node(v)
        for e in self._edges.values():
            g.add_edge(e.u, e.v, e.color, eid=e.eid)
        return g

    def relabel(self, mapping: Dict[Node, Node]) -> "ECGraph":
        """Return a copy with nodes relabelled through ``mapping``.

        ``mapping`` must be injective on the node set; nodes absent from the
        mapping keep their labels.  Edge ids are preserved.
        """
        image = [mapping.get(v, v) for v in self._slots]
        if len(set(image)) != len(image):
            raise ValueError("relabelling is not injective")
        g = ECGraph()
        for v in self._slots:
            g.add_node(mapping.get(v, v))
        for e in self._edges.values():
            g.add_edge(mapping.get(e.u, e.u), mapping.get(e.v, e.v), e.color, eid=e.eid)
        return g

    def disjoint_union(self, other: "ECGraph", tags: Tuple[Any, Any] = (0, 1)) -> "ECGraph":
        """Disjoint union; nodes become ``(tag, original_label)`` pairs.

        Edge ids are reassigned (ids from ``self`` first, then ``other``).
        """
        g = ECGraph()
        for v in self._slots:
            g.add_node((tags[0], v))
        for v in other._slots:
            g.add_node((tags[1], v))
        for e in self.edges():
            g.add_edge((tags[0], e.u), (tags[0], e.v), e.color)
        for e in other.edges():
            g.add_edge((tags[1], e.u), (tags[1], e.v), e.color)
        return g

    def induced_subgraph(self, nodes: Iterable[Node]) -> "ECGraph":
        """Subgraph induced by ``nodes`` (keeps edges with both ends inside)."""
        keep = set(nodes)
        g = ECGraph()
        for v in keep:
            if v not in self._slots:
                raise KeyError(f"{v!r} is not a node")
            g.add_node(v)
        for e in self._edges.values():
            if e.u in keep and e.v in keep:
                g.add_edge(e.u, e.v, e.color, eid=e.eid)
        return g

    # ------------------------------------------------------------------
    # validation / dunder
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on corruption."""
        for v, slots in self._slots.items():
            for color, eid in slots.items():
                e = self._edges[eid]
                assert e.color == color
                assert v in (e.u, e.v)
        for e in self._edges.values():
            assert self._slots[e.u][e.color] == e.eid
            assert self._slots[e.v][e.color] == e.eid

    def __contains__(self, v: Node) -> bool:
        return v in self._slots

    def __iter__(self) -> Iterator[Node]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ECGraph(n={self.num_nodes()}, m={self.num_edges()}, "
            f"loops={sum(1 for e in self._edges.values() if e.is_loop)}, "
            f"colors={self.colors()})"
        )
