"""Tests for the locally-checkable-problems facade (repro.problems)."""

from __future__ import annotations

from fractions import Fraction

from repro.core.separations import maximal_matching_in_ec
from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    single_node_with_loops,
)
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.fm import fm_from_node_outputs
from repro.matching.vertex_cover import vertex_cover_from_fm
from repro.problems import (
    PROBLEMS,
    MaximalFractionalMatching,
    MaximalMatching,
    TwoApproxVertexCover,
)

F = Fraction


class TestRegistry:
    def test_all_registered(self):
        assert set(PROBLEMS) == {
            "maximal-fractional-matching",
            "maximal-matching",
            "vertex-cover",
        }

    def test_radius_one(self):
        assert all(p.radius == 1 for p in PROBLEMS.values())


class TestMaximalFM:
    def test_accepts_algorithm_output(self):
        g = random_bounded_degree_graph(15, 4, seed=0)
        outputs = greedy_color_algorithm().run_on(g)
        assert MaximalFractionalMatching().is_valid(g, outputs)

    def test_rejects_zero(self):
        g = path_graph(3)
        zero = {v: {e.color: F(0) for e in g.incident_edges(v)} for v in g.nodes()}
        problems = MaximalFractionalMatching().violations(g, zero)
        assert any("saturated" in p for p in problems)

    def test_rejects_inconsistent(self):
        g = path_graph(2)
        bad = {0: {1: F(1)}, 1: {1: F(0)}}
        problems = MaximalFractionalMatching().violations(g, bad)
        assert problems and "inconsistent" in problems[0]


class TestMaximalMatchingProblem:
    def test_accepts_ec_matching(self):
        g = cycle_graph(8)
        chosen, _ = maximal_matching_in_ec(g)
        assert MaximalMatching().is_valid(g, chosen)

    def test_rejects_overlap(self):
        g = path_graph(3)
        problems = MaximalMatching().violations(g, {0, 1})
        assert any("overlaps" in p for p in problems)

    def test_rejects_loops(self):
        g = single_node_with_loops(1)
        problems = MaximalMatching().violations(g, {0})
        assert any("loop" in p for p in problems)

    def test_rejects_non_maximal(self):
        g = path_graph(5)
        problems = MaximalMatching().violations(g, {0})
        assert any("not maximal" in p for p in problems)

    def test_rejects_unknown_edge(self):
        g = path_graph(2)
        problems = MaximalMatching().violations(g, {99})
        assert any("does not exist" in p for p in problems)


class TestVertexCoverProblem:
    def test_accepts_extracted_cover(self):
        g = random_bounded_degree_graph(15, 4, seed=1)
        fm = fm_from_node_outputs(g, greedy_color_algorithm().run_on(g))
        cover = vertex_cover_from_fm(fm)
        assert TwoApproxVertexCover().is_valid(g, cover)

    def test_rejects_uncovered(self):
        g = path_graph(4)
        problems = TwoApproxVertexCover().violations(g, {0})
        assert any("uncovered" in p for p in problems)

    def test_rejects_unknown_nodes(self):
        g = path_graph(2)
        problems = TwoApproxVertexCover().violations(g, {"ghost"})
        assert any("unknown" in p for p in problems)
