"""Rendering EC-graphs and lower-bound witnesses (Graphviz DOT / ASCII).

The paper communicates its construction through pictures (Figures 5-7);
this module produces the same artefacts from live objects: DOT sources for
graphs (loops drawn as self-edges labelled by colour, matching the paper's
conventions) and annotated witness-pair renderings in which the witness
nodes and the disagreeing loop colour are highlighted.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from .multigraph import ECGraph

Node = Hashable

__all__ = ["to_dot", "witness_pair_to_dot", "ascii_summary"]

_PALETTE = [
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a",
    "#66a61e", "#e6ab02", "#a6761d", "#666666",
]


def _color_of(color, palette_index: Dict) -> str:
    key = repr(color)
    if key not in palette_index:
        palette_index[key] = _PALETTE[len(palette_index) % len(_PALETTE)]
    return palette_index[key]


def to_dot(
    g: ECGraph,
    name: str = "G",
    highlight_nodes: Optional[List[Node]] = None,
    highlight_color=None,
) -> str:
    """Graphviz DOT source for an EC-graph.

    Edge colours map to a qualitative palette and are also printed as
    labels; ``highlight_nodes`` get a double circle and ``highlight_color``
    edges a thicker pen — used by :func:`witness_pair_to_dot` to mark the
    witness node and the disagreeing loop.
    """
    highlight = set(highlight_nodes or [])
    palette_index: Dict = {}
    lines = [f"graph {name} {{", "  layout=neato;", "  overlap=false;"]
    ids = {v: f"n{i}" for i, v in enumerate(g.nodes())}
    for v in g.nodes():
        shape = "doublecircle" if v in highlight else "circle"
        label = str(v).replace('"', "'")
        lines.append(f'  {ids[v]} [label="{label}", shape={shape}];')
    for e in g.edges():
        pen = 3 if highlight_color is not None and e.color == highlight_color else 1
        colour = _color_of(e.color, palette_index)
        lines.append(
            f'  {ids[e.u]} -- {ids[e.v]} '
            f'[label="{e.color}", color="{colour}", penwidth={pen}];'
        )
    lines.append("}")
    return "\n".join(lines)


def witness_pair_to_dot(step) -> str:
    """Render one :class:`~repro.core.witness.StepWitness` as two DOT graphs.

    The witness nodes are double-circled and the disagreeing loop colour is
    drawn thick in both graphs — a machine-generated Figure 6/7.
    """
    g_dot = to_dot(
        step.graph_g,
        name=f"G{step.index}",
        highlight_nodes=[step.node_g],
        highlight_color=step.color,
    )
    h_dot = to_dot(
        step.graph_h,
        name=f"H{step.index}",
        highlight_nodes=[step.node_h],
        highlight_color=step.color,
    )
    header = (
        f"// step {step.index}: weights {step.weight_g} vs {step.weight_h} "
        f"on loop colour {step.color!r}\n"
    )
    return header + g_dot + "\n" + h_dot


def ascii_summary(g: ECGraph) -> str:
    """A compact textual adjacency listing (loops flagged with ``@``)."""
    lines = []
    for v in sorted(g.nodes(), key=repr):
        parts = []
        for e in g.incident_edges(v):
            mark = "@" if e.is_loop else str(e.other(v))
            parts.append(f"{e.color}:{mark}")
        lines.append(f"{v!r:>16}  deg={g.degree(v)}  [{', '.join(parts)}]")
    return "\n".join(lines)
