"""JSON serialisation for EC-graphs and lower-bound witnesses.

Hard instances produced by the adversary are valuable artefacts (regression
inputs, teaching material, cross-implementation checks); this module makes
them portable.  Node labels are arbitrary nested tuples/strings in the
construction, so they are encoded losslessly through a tagged scheme.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Hashable, List

from .multigraph import ECGraph

Node = Hashable

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "witness_step_to_json",
]


def _encode_label(label: Any) -> Any:
    """Encode a node label (nested tuples of str/int) as tagged JSON."""
    if isinstance(label, tuple):
        return {"t": [_encode_label(x) for x in label]}
    if isinstance(label, (str, int, bool)) or label is None:
        return label
    raise TypeError(f"cannot serialise node label of type {type(label).__name__}")


def _decode_label(data: Any) -> Any:
    if isinstance(data, dict) and set(data.keys()) == {"t"}:
        return tuple(_decode_label(x) for x in data["t"])
    return data


def graph_to_json(g: ECGraph) -> str:
    """Serialise an EC-graph (nodes, edges with ids and colours) to JSON.

    Colours must be JSON-representable (ints/strings — all families and
    the adversary use ints).
    """
    payload = {
        "format": "repro-ecgraph-v1",
        "nodes": [_encode_label(v) for v in g.nodes()],
        "edges": [
            {
                "eid": e.eid,
                "u": _encode_label(e.u),
                "v": _encode_label(e.v),
                "color": e.color,
            }
            for e in g.edges()
        ],
    }
    return json.dumps(payload, sort_keys=True)


def graph_from_json(text: str) -> ECGraph:
    """Inverse of :func:`graph_to_json`; validates the format tag."""
    payload = json.loads(text)
    if payload.get("format") != "repro-ecgraph-v1":
        raise ValueError(f"unknown format {payload.get('format')!r}")
    g = ECGraph()
    for label in payload["nodes"]:
        g.add_node(_decode_label(label))
    for edge in payload["edges"]:
        g.add_edge(
            _decode_label(edge["u"]),
            _decode_label(edge["v"]),
            edge["color"],
            eid=edge["eid"],
        )
    return g


def witness_step_to_json(step) -> str:
    """Serialise a :class:`~repro.core.witness.StepWitness` with its graphs.

    Weights are stored as exact ``numerator/denominator`` strings.
    """
    payload = {
        "format": "repro-witness-step-v1",
        "index": step.index,
        "side": step.side,
        "color": step.color,
        "node_g": _encode_label(step.node_g),
        "node_h": _encode_label(step.node_h),
        "weight_g": str(Fraction(step.weight_g)),
        "weight_h": str(Fraction(step.weight_h)),
        "balls_isomorphic": step.balls_isomorphic,
        "loop_budget": step.loop_budget,
        "graph_g": json.loads(graph_to_json(step.graph_g)),
        "graph_h": json.loads(graph_to_json(step.graph_h)),
    }
    return json.dumps(payload, sort_keys=True)
