"""View trees: the information a node can gather in ``t`` rounds.

In an anonymous edge-coloured network, everything a node can learn in ``t``
rounds is its depth-``t`` *view tree*: recursively, the multiset of
(incident colour, neighbour's depth-``t-1`` view) pairs.  The view tree is
exactly the truncated universal cover seen from the node (paper, Section
3.4) presented as a nested tuple, hence it is invariant under lifts.

Two constructions are provided and cross-checked in the tests:

* :func:`ec_view_tree` — direct recursion on the graph;
* :class:`FullInformationEC` — a message-passing algorithm that gathers the
  same object through the simulator (validating the runtime's loop/echo
  semantics against the mathematical definition).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from ..graphs.multigraph import ECGraph
from .algorithm import DistributedAlgorithm
from .context import NodeContext

Node = Hashable
ViewTree = Tuple  # nested tuples: ((color, subtree), ...) sorted by colour

__all__ = ["ec_view_tree", "FullInformationEC"]


def ec_view_tree(g: ECGraph, v: Node, depth: int) -> ViewTree:
    """The depth-``depth`` view tree of ``v`` in EC-graph ``g``.

    ``depth = 0`` yields the empty view ``()`` — a node initially knows
    nothing, not even its degree, matching the convention that a 0-round
    algorithm sees only ``tau_0``.  For ``depth >= 1`` the view is the
    colour-sorted tuple of ``(colour, neighbour's depth-1 view)`` pairs; a
    loop contributes the node's *own* previous-depth view (the neighbour
    across a loop is a copy of oneself).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    # iterative deepening: views[d][u] = depth-d view of u; memoised per level
    views: Dict[Node, ViewTree] = {u: () for u in g.nodes()}
    for _ in range(depth):
        nxt: Dict[Node, ViewTree] = {}
        for u in g.nodes():
            entries = []
            for e in g.incident_edges(u):
                entries.append((e.color, views[e.other(u)]))
            nxt[u] = tuple(sorted(entries, key=lambda item: repr(item[0])))
        views = nxt
    return views[v]


class FullInformationEC(DistributedAlgorithm):
    """Gather the depth-``t`` view tree by message passing.

    Each node starts with the empty view; every round it sends its current
    view on every port and assembles the received views into the next-depth
    view.  After ``t`` rounds the state equals ``ec_view_tree(g, v, t)``.
    This is the canonical "full information" algorithm: any ``t``-time EC
    algorithm factors through it.
    """

    model = "EC"

    def __init__(self, t: int):
        if t < 0:
            raise ValueError("t must be non-negative")
        self.t = t

    def initial_state(self, ctx: NodeContext) -> Tuple[int, ViewTree]:
        """State = (rounds completed, current view tree)."""
        return (0, ())

    def send(self, state: Tuple[int, ViewTree], ctx: NodeContext) -> Dict[Any, Any]:
        rounds_done, view = state
        if rounds_done >= self.t:
            return {}
        return {port: view for port in ctx.ports}

    def receive(self, state: Tuple[int, ViewTree], ctx: NodeContext, inbox: Dict[Any, Any]) -> Tuple[int, ViewTree]:
        rounds_done, view = state
        if rounds_done >= self.t:
            return state
        entries = tuple(sorted(((c, inbox[c]) for c in ctx.ports), key=lambda item: repr(item[0])))
        return (rounds_done + 1, entries)

    def output(self, state: Tuple[int, ViewTree], ctx: NodeContext) -> Any:
        rounds_done, view = state
        return view if rounds_done >= self.t else None
