"""Edge-coloured undirected multigraphs with loops (EC-graphs).

This module provides :class:`ECGraph`, the fundamental substrate of the
reproduction.  An EC-graph (paper, Section 3.3) is an undirected multigraph
whose edges carry a *proper* edge colouring: any two edges sharing an endpoint
have distinct colours.  Loops are allowed and follow the paper's convention
(Section 3.5, Figure 3): a loop contributes **+1** to the degree of its
endpoint and occupies exactly one colour slot there.

Because the colouring is proper, each node has *at most one* incident edge of
any given colour.  This rigidity is what makes the whole lower-bound machinery
tractable: radius-``t`` views are determined by colour walks, universal covers
unfold deterministically, and the simulator can use colours as ports.

Since the kernel refactor, :class:`ECGraph` is a thin mutable *view* over the
immutable :mod:`repro.graphs.kernel` substrate: mutations go through a
copy-on-write :class:`~repro.graphs.kernel.GraphBuilder`, ``.kernel``
freezes (and caches) the current state as a digest-addressed
:class:`~repro.graphs.kernel.GraphKernel`, and :meth:`ECGraph.fork` derives
an independent graph sharing all untouched structure with this one — which
is also what :meth:`copy` now does.

Example
-------
>>> g = ECGraph()
>>> v = g.add_node("v")
>>> e1 = g.add_edge("v", "v", color=1)   # a loop of colour 1
>>> u = g.add_node("u")
>>> e2 = g.add_edge("v", "u", color=2)
>>> g.degree("v")
2
>>> sorted(g.incident_colors("v"))
[1, 2]
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .kernel import Edge, GraphBuilder, GraphKernel, ImproperColoringError

Node = Hashable
Color = int
EdgeId = int

__all__ = ["Edge", "ECGraph", "ImproperColoringError"]


class ECGraph:
    """A properly edge-coloured undirected multigraph with loops.

    The class enforces properness on insertion: adding an edge of colour ``c``
    at a node that already has an incident edge of colour ``c`` raises
    :class:`ImproperColoringError`.  A loop of colour ``c`` at ``v`` occupies
    the single colour-``c`` slot of ``v`` and counts +1 towards ``degree(v)``.

    Nodes may be any hashable values; edge ids are small integers assigned by
    the graph and stable across copies.
    """

    __slots__ = ("_b", "_k")

    def __init__(self) -> None:
        self._b = GraphBuilder(directed=False)
        self._k: Optional[GraphKernel] = None

    # ------------------------------------------------------------------
    # kernel plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(cls, builder: GraphBuilder) -> "ECGraph":
        g = cls.__new__(cls)
        g._b = builder
        g._k = None
        return g

    @classmethod
    def from_kernel(cls, kernel: GraphKernel) -> "ECGraph":
        """A mutable view forked from a frozen kernel (shares all structure)."""
        if kernel.directed:
            raise ValueError("ECGraph views are undirected; got a PO kernel")
        g = cls._wrap(kernel.builder())
        g._k = kernel
        return g

    @property
    def kernel(self) -> GraphKernel:
        """The frozen :class:`GraphKernel` snapshot of the current state.

        Computed on first access after any mutation and cached; repeated
        reads (digest lookups, network snapshots) are O(1).
        """
        if self._k is None:
            self._k = self._b.freeze()
        return self._k

    @property
    def digest(self) -> str:
        """Content digest of the current state (see :class:`GraphKernel`)."""
        return self.kernel.digest

    def rooted_digest(self, root: Optional[Node]) -> str:
        """Digest of the graph with a distinguished root label."""
        return self.kernel.rooted_digest(root)

    def fork(self) -> "ECGraph":
        """An independent graph sharing all current structure with this one.

        The persistent-builder replacement for deep copying: O(1) apart from
        two pointer-level dict copies; per-node slot maps and edge records
        stay shared until either side mutates them.  Node labels, edge ids
        and iteration order are preserved.
        """
        return ECGraph.from_kernel(self.kernel)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Add an isolated node (no-op if present).  Returns the node."""
        self._k = None
        return self._b.add_node(v)

    def add_edge(self, u: Node, v: Node, color: Color, eid: Optional[EdgeId] = None) -> EdgeId:
        """Add an edge of the given colour between ``u`` and ``v``.

        ``u == v`` creates a loop.  Raises :class:`ImproperColoringError` if
        either endpoint already has an incident edge of this colour.  An
        explicit ``eid`` may be supplied (used when copying graphs); it must
        be fresh.
        """
        self._k = None
        return self._b.add_edge(u, v, color, eid=eid)

    def remove_edge(self, eid: EdgeId) -> Edge:
        """Remove the edge with id ``eid`` and return its record."""
        self._k = None
        return self._b.remove_edge(eid)

    def remove_node(self, v: Node) -> None:
        """Remove node ``v`` together with all incident edges."""
        self._k = None
        self._b.remove_node(v)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """List of all nodes."""
        return self._b.nodes()

    def edges(self) -> List[Edge]:
        """List of all edge records."""
        return self._b.edges()

    def edge(self, eid: EdgeId) -> Edge:
        """The edge record with id ``eid``."""
        return self._b.edge(eid)

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node of this graph."""
        return self._b.has_node(v)

    def has_edge_id(self, eid: EdgeId) -> bool:
        """Whether an edge with id ``eid`` exists."""
        return self._b.has_edge_id(eid)

    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._b.num_nodes()

    def num_edges(self) -> int:
        """Number of edges (loops count once)."""
        return self._b.num_edges()

    def degree(self, v: Node) -> int:
        """Degree of ``v``; loops count +1 (EC convention, paper Section 3.5)."""
        return len(self._b._slots[v])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        return max((len(s) for s in self._b._slots.values()), default=0)

    def incident_colors(self, v: Node) -> List[Color]:
        """Colours of edges incident to ``v`` (each appears once)."""
        return list(self._b._slots[v].keys())

    def incident_edges(self, v: Node) -> List[Edge]:
        """Edge records incident to ``v``, in colour order."""
        edges = self._b._edges
        return [edges[eid] for _, eid in sorted(self._b._slots[v].items())]

    def incident_edge_ids(self, v: Node) -> List[EdgeId]:
        """Ids of edges incident to ``v``, in slot (insertion) order.

        The sort-free companion of :meth:`incident_edges` for order-independent
        aggregations such as exact-:class:`~fractions.Fraction` load sums.
        """
        return list(self._b._slots[v].values())

    def edge_at(self, v: Node, color: Color) -> Optional[Edge]:
        """The unique colour-``color`` edge at ``v``, or ``None``."""
        eid = self._b._slots[v].get(color)
        return None if eid is None else self._b._edges[eid]

    def loops_at(self, v: Node) -> List[Edge]:
        """All loops incident to ``v``, in colour order."""
        return [e for e in self.incident_edges(v) if e.is_loop]

    def loop_count(self, v: Node) -> int:
        """Number of loops at ``v``."""
        return len(self.loops_at(v))

    def neighbors(self, v: Node) -> List[Node]:
        """Distinct neighbours of ``v`` (``v`` itself if it has a loop)."""
        seen: List[Node] = []
        for e in self.incident_edges(v):
            w = e.other(v)
            if w not in seen:
                seen.append(w)
        return seen

    def colors(self) -> List[Color]:
        """Sorted list of all colours used in the graph."""
        return sorted({e.color for e in self._b._edges.values()})

    def is_simple(self) -> bool:
        """Whether the graph has no loops and no parallel edges."""
        seen = set()
        for e in self._b._edges.values():
            if e.is_loop:
                return False
            key = frozenset((e.u, e.v))
            if key in seen:
                return False
            seen.add(key)
        return True

    def non_loop_edges(self) -> List[Edge]:
        """All edges that are not loops."""
        return [e for e in self._b._edges.values() if not e.is_loop]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node, max_dist: Optional[int] = None) -> Dict[Node, int]:
        """Breadth-first distances from ``source``.

        Loops never decrease distances (they connect a node to itself), so
        they are ignored for distance purposes.  If ``max_dist`` is given,
        exploration stops at that radius.
        """
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (max_dist is None or d < max_dist):
            d += 1
            nxt: List[Node] = []
            for v in frontier:
                for e in self.incident_edges(v):
                    w = e.other(v)
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        return dist

    def connected_components(self) -> List[List[Node]]:
        """Connected components as lists of nodes."""
        remaining = set(self._b._slots.keys())
        comps: List[List[Node]] = []
        while remaining:
            src = next(iter(remaining))
            comp = list(self.bfs_distances(src).keys())
            comps.append(comp)
            remaining.difference_update(comp)
        return comps

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        return len(self.connected_components()) <= 1

    def is_tree_ignoring_loops(self) -> bool:
        """Whether the graph with loops removed is a tree (paper property P3)."""
        non_loops = self.non_loop_edges()
        n = self.num_nodes()
        if len(non_loops) != n - 1:
            return False
        return self.is_connected()

    # ------------------------------------------------------------------
    # copying / combining
    # ------------------------------------------------------------------
    def copy(self) -> "ECGraph":
        """A copy preserving node labels and edge ids.

        Now a structurally-shared :meth:`fork` of the frozen kernel rather
        than an edge-by-edge rebuild: O(1) apart from pointer-level dict
        copies.
        """
        return self.fork()

    def relabel(self, mapping: Dict[Node, Node]) -> "ECGraph":
        """Return a copy with nodes relabelled through ``mapping``.

        ``mapping`` must be injective on the node set; nodes absent from the
        mapping keep their labels.  Edge ids are preserved.
        """
        builder = GraphBuilder(directed=False)
        builder.merge(
            self, relabel=lambda v: mapping.get(v, v), preserve_eids=True
        )
        return ECGraph._wrap(builder)

    def disjoint_union(self, other: "ECGraph", tags: Tuple[Any, Any] = (0, 1)) -> "ECGraph":
        """Disjoint union; nodes become ``(tag, original_label)`` pairs.

        Edge ids are reassigned (ids from ``self`` first, then ``other``).
        """
        g = ECGraph()
        for v in self.nodes():
            g.add_node((tags[0], v))
        for v in other.nodes():
            g.add_node((tags[1], v))
        for e in self.edges():
            g.add_edge((tags[0], e.u), (tags[0], e.v), e.color)
        for e in other.edges():
            g.add_edge((tags[1], e.u), (tags[1], e.v), e.color)
        return g

    def induced_subgraph(self, nodes: Iterable[Node]) -> "ECGraph":
        """Subgraph induced by ``nodes`` (keeps edges with both ends inside)."""
        keep = set(nodes)
        g = ECGraph()
        for v in keep:
            if not self._b.has_node(v):
                raise KeyError(f"{v!r} is not a node")
            g.add_node(v)
        for e in self._b._edges.values():
            if e.u in keep and e.v in keep:
                g.add_edge(e.u, e.v, e.color, eid=e.eid)
        return g

    # ------------------------------------------------------------------
    # validation / dunder
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on corruption."""
        for v, slots in self._b._slots.items():
            for color, eid in slots.items():
                e = self._b._edges[eid]
                assert e.color == color
                assert v in (e.u, e.v)
        for e in self._b._edges.values():
            assert self._b._slots[e.u][e.color] == e.eid
            assert self._b._slots[e.v][e.color] == e.eid

    def __contains__(self, v: Node) -> bool:
        return self._b.has_node(v)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._b._slots)

    def __len__(self) -> int:
        return self._b.num_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ECGraph(n={self.num_nodes()}, m={self.num_edges()}, "
            f"loops={sum(1 for e in self.edges() if e.is_loop)}, "
            f"colors={self.colors()})"
        )
