"""Randomised maximal FM via random edge priorities (Appendix B's subject).

A classical randomised local algorithm in the style of Israeli-Itai/Luby,
formulated for fractional matchings:

1. every node draws a private random string (the *tape*; see
   :mod:`repro.local.randomized`) and exchanges it with its neighbours;
   each edge obtains the symmetric priority ``(min, max)`` of its two
   endpoint strings (salted with the edge colour in the EC model);
2. each round, every *live* edge (neither endpoint spent) whose priority
   is maximal among the live edges at both its endpoints *fires*: it takes
   ``min`` of the two residuals — both endpoints learn both residuals from
   the round's messages, so the increment is computed symmetrically;
3. nodes halt when spent or isolated from live edges.

Correctness is probabilistic, exactly as Appendix B requires of its
subject: if two *adjacent* edges draw equal priorities they fire
simultaneously and can overload their shared endpoint — the algorithm
"fails with some small probability" (controlled by the tape's bit width),
and Lemma 10's search finds tapes on which it never fails.  With locally
distinct priorities the output is a maximal FM: a fired edge saturates an
endpoint, and every round the globally top live edge fires, so the run
needs at most ``|E|`` rounds (logarithmic in practice; see the benches).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Dict, Hashable, Optional, Tuple

import networkx as nx

from ..graphs.multigraph import ECGraph
from ..local.algorithm import DistributedAlgorithm, ECWeightAlgorithm
from ..local.context import NodeContext
from ..local.randomized import RandomTape, my_coins, tape_globals, uniform_tape
from ..local.runtime import ECNetwork, IDNetwork, run
from .fm import FractionalMatching, fm_from_node_outputs

Node = Hashable

__all__ = [
    "RandomPriorityFM",
    "RandomPriorityEC",
    "run_random_priority_id",
    "id_output_is_valid_fm",
    "failure_rate",
]

ZERO = Fraction(0)
ONE = Fraction(1)
_CLOSED = "closed"


class RandomPriorityFM(DistributedAlgorithm):
    """State machine for random-priority maximal FM (EC or ID model).

    Requires a tape in the network globals (key ``"random_tape"``).  Round
    1 exchanges coins; each subsequent round sends ``(residual, top live
    priority)`` on the live ports (or ``"closed"`` once spent) and fires
    the locally dominant edges.
    """

    #: reads ``ctx.node`` only through :func:`repro.local.randomized.my_coins`
    #: — private coins are an input delivered by the tape, not identity.
    sanitizer_allow = frozenset({"node"})

    def __init__(self, model: str = "EC"):
        if model not in ("EC", "ID"):
            raise ValueError(f"unsupported model {model!r}")
        self.model = model

    # -- helpers ---------------------------------------------------------
    def _priority(self, mine: int, theirs: int, port) -> Tuple:
        salt = repr(port) if self.model == "EC" else ""
        return (min(mine, theirs), max(mine, theirs), salt)

    def _top(self, state: Dict[str, Any]) -> Optional[Tuple]:
        live = [state["priority"][p] for p in state["live"]]
        return max(live) if live else None

    # -- protocol --------------------------------------------------------
    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        return {
            "phase": "coins",
            "residual": ONE,
            "weights": {p: ZERO for p in ctx.ports},
            "priority": {},
            "live": set(ctx.ports),
            "done": len(ctx.ports) == 0,
        }

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        if state["done"]:
            return {}
        if state["phase"] == "coins":
            return {p: my_coins(ctx) for p in ctx.ports}
        if state["residual"] <= ZERO:
            return {p: _CLOSED for p in state["live"]}
        top = self._top(state)
        return {p: (state["residual"], top) for p in state["live"]}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        if state["done"]:
            return state
        state = dict(state)
        if state["phase"] == "coins":
            mine = my_coins(ctx)
            state["priority"] = {p: self._priority(mine, inbox[p], p) for p in ctx.ports}
            state["phase"] = "rounds"
            return state
        state["weights"] = dict(state["weights"])
        state["live"] = set(state["live"])
        my_top = self._top(state)
        my_residual = state["residual"]
        spent = my_residual <= ZERO
        for p in list(state["live"]):
            theirs = inbox.get(p, _CLOSED)
            if theirs == _CLOSED or spent:
                state["live"].discard(p)
                continue
            their_residual, their_top = theirs
            prio = state["priority"][p]
            if prio == my_top and prio == their_top:
                # dominant at both endpoints: fire symmetrically
                increment = min(my_residual, their_residual)
                state["weights"][p] += increment
                state["residual"] -= increment
        if state["residual"] <= ZERO:
            state["live"] = set()
        if not state["live"]:
            state["done"] = True
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, Fraction]]:
        return dict(state["weights"]) if state["done"] else None

    def snapshot(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Fraction]:
        """Current weights (partial answer for cut-off evaluations)."""
        return dict(state["weights"])


class RandomPriorityEC(ECWeightAlgorithm):
    """EC packaging of :class:`RandomPriorityFM` under a fixed tape.

    Given the tape, this is a *deterministic* EC algorithm — the object
    ``A_rho`` of Appendix B.  Note it is **not** lift-invariant in general
    (two copies of a node hold independent coins), which is precisely why
    the paper must derandomise before applying the anonymous-model
    machinery; the adversary's ``deep_verify`` mode can exhibit this.
    """

    def __init__(self, tape: RandomTape, name: str = "random-priority"):
        self.tape = dict(tape)
        self.name = name
        self._last_rounds: Optional[int] = None

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Any, Fraction]]:
        missing = [v for v in g.nodes() if v not in self.tape]
        if missing:
            raise KeyError(f"tape missing entries for nodes {missing[:3]}...")
        network = ECNetwork(g, globals_=tape_globals(self.tape))
        result = run(network, RandomPriorityFM("EC"), max_rounds=4 * (g.num_edges() + 2))
        if not result.halted:
            raise RuntimeError("random-priority FM did not halt (priority deadlock?)")
        self._last_rounds = result.rounds
        return {v: dict(out) for v, out in result.outputs.items()}

    def rounds_used(self, g: ECGraph) -> Optional[int]:
        """Rounds of the most recent run (includes the coin-exchange round)."""
        return self._last_rounds


def run_random_priority_id(
    g: "nx.Graph", tape: RandomTape
) -> Tuple[Dict[Node, Dict[Node, Fraction]], int]:
    """Run the ID-model variant on a simple graph under a fixed tape.

    Returns ``(outputs, rounds)``; outputs are keyed by neighbour identifier
    as usual for the ID model.
    """
    network = IDNetwork(g, globals_=tape_globals(tape))
    result = run(network, RandomPriorityFM("ID"), max_rounds=4 * (g.number_of_edges() + 2))
    if not result.halted:
        raise RuntimeError("random-priority FM did not halt")
    return {v: dict(out) for v, out in result.outputs.items()}, result.rounds


def id_output_is_valid_fm(g: "nx.Graph", outputs: Dict[Node, Dict[Node, Fraction]]) -> bool:
    """Validate an ID-model FM output: consistent, feasible, maximal."""
    for u, v in g.edges():
        if outputs[u].get(v) != outputs[v].get(u):
            return False
    loads = {v: sum(outputs[v].values(), ZERO) for v in g.nodes()}
    if any(load > ONE for load in loads.values()):
        return False
    if any(w < ZERO for out in outputs.values() for w in out.values()):
        return False
    return all(loads[u] == ONE or loads[v] == ONE for u, v in g.edges())


def failure_rate(
    g: "nx.Graph", rng: random.Random, bits: int, samples: int = 100
) -> Fraction:
    """Empirical probability that a fresh tape yields an invalid output.

    Uses the **ID** variant, where edge priorities carry no colour salt:
    two adjacent edges tie whenever their endpoint coin pairs coincide, and
    a tie makes both fire, overloading the shared node.  Small ``bits``
    force such collisions; large ``bits`` drive the rate to zero — the
    quantitative backdrop of Appendix B's averaging argument.  (The EC
    variant is always correct: proper edge colours salt every local tie
    away.)
    """
    failures = 0
    for _ in range(samples):
        tape = uniform_tape(g.nodes(), rng, bits=bits)
        try:
            outputs, _ = run_random_priority_id(g, tape)
            ok = id_output_is_valid_fm(g, outputs)
        except Exception:
            ok = False
        failures += not ok
    return Fraction(failures, samples)
