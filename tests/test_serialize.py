"""Tests for JSON serialisation (repro.graphs.serialize)."""

from __future__ import annotations

import json

import pytest

from repro.core.adversary import run_adversary
from repro.graphs.families import cycle_graph, random_loopy_tree, single_node_with_loops
from repro.graphs.isomorphism import ec_isomorphic
from repro.graphs.serialize import graph_from_json, graph_to_json, witness_step_to_json
from repro.matching.greedy_color import greedy_color_algorithm


class TestGraphRoundTrip:
    def test_simple_graph(self):
        g = cycle_graph(6)
        back = graph_from_json(graph_to_json(g))
        assert sorted(map(repr, back.nodes())) == sorted(map(repr, g.nodes()))
        assert {(e.eid, e.color) for e in back.edges()} == {
            (e.eid, e.color) for e in g.edges()
        }

    def test_loops_survive(self):
        g = single_node_with_loops(3)
        back = graph_from_json(graph_to_json(g))
        assert back.loop_count(0) == 3

    def test_tuple_labels(self):
        """Adversary graphs have nested tuple labels: must round-trip exactly."""
        g = random_loopy_tree(3, 1, seed=0)
        nested = g.relabel({v: (0, ("x", v)) for v in g.nodes()})
        back = graph_from_json(graph_to_json(nested))
        assert back.has_node((0, ("x", 0)))
        assert ec_isomorphic(back, nested)

    def test_adversary_graphs_round_trip(self):
        witness = run_adversary(greedy_color_algorithm(), 4)
        top = witness.steps[-1]
        back = graph_from_json(graph_to_json(top.graph_g))
        assert back.num_nodes() == top.graph_g.num_nodes()
        assert back.edge_at(top.node_g, top.color).is_loop

    def test_deterministic_output(self):
        g = cycle_graph(5)
        assert graph_to_json(g) == graph_to_json(g.copy())

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            graph_from_json(json.dumps({"format": "something-else"}))

    def test_unserialisable_label_rejected(self):
        from repro.graphs.multigraph import ECGraph

        g = ECGraph()
        g.add_node(frozenset([1]))
        with pytest.raises(TypeError):
            graph_to_json(g)


class TestWitnessStep:
    def test_step_payload(self):
        witness = run_adversary(greedy_color_algorithm(), 4)
        step = witness.steps[-1]
        payload = json.loads(witness_step_to_json(step))
        assert payload["format"] == "repro-witness-step-v1"
        assert payload["index"] == 2
        assert payload["balls_isomorphic"] is True
        g_back = graph_from_json(json.dumps(payload["graph_g"]))
        assert g_back.num_nodes() == step.graph_g.num_nodes()


class TestSerializeReverifyIntegration:
    def test_witness_survives_round_trip_and_reverifies(self):
        """Serialise a witness step, reload the graphs, rebuild the step,
        and re-run the full (P1)-(P3) verification — the third-party
        auditor's workflow."""
        import json
        from fractions import Fraction

        from repro.core.witness import StepWitness, reverify_step

        witness = run_adversary(greedy_color_algorithm(), 5)
        step = witness.steps[-1]
        payload = json.loads(witness_step_to_json(step))
        rebuilt = StepWitness(
            index=payload["index"],
            graph_g=graph_from_json(json.dumps(payload["graph_g"])),
            graph_h=graph_from_json(json.dumps(payload["graph_h"])),
            node_g=step.node_g,
            node_h=step.node_h,
            color=payload["color"],
            weight_g=Fraction(payload["weight_g"]),
            weight_h=Fraction(payload["weight_h"]),
            balls_isomorphic=payload["balls_isomorphic"],
            loop_budget=payload["loop_budget"],
            trees=True,
            side=payload["side"],
        )
        assert reverify_step(rebuilt, witness.delta) == []
