"""Tests for Lemma 2 machinery (repro.core.saturation)."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.saturation import (
    check_lift_invariance,
    figure4_certificate,
    saturation_indicator,
    simple_unfolding,
    unsaturated_nodes,
)
from repro.graphs.families import (
    cycle_graph,
    random_loopy_tree,
    single_node_with_loops,
)
from repro.graphs.lifts import is_covering_map_ec
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.naive import DegreeSplitFM, ZeroFM

F = Fraction


class TestIndicators:
    def test_unsaturated_nodes(self):
        g = single_node_with_loops(2)
        assert unsaturated_nodes(g, {0: {1: F(1, 2), 2: F(1, 4)}}) == [0]
        assert unsaturated_nodes(g, {0: {1: F(1, 2), 2: F(1, 2)}}) == []

    def test_saturation_indicator_binary(self):
        g = random_loopy_tree(4, 1, seed=0)
        outputs = greedy_color_algorithm().run_on(g)
        a_star = saturation_indicator(g, outputs)
        assert set(a_star.values()) <= {0, 1}
        assert all(v == 1 for v in a_star.values())  # Lemma 2 on a loopy graph


class TestFigure4:
    def test_certificate_for_non_saturating_algorithm(self):
        """ZeroFM leaves everyone unsaturated; unfolding a loop produces a
        simple-lift witness where two adjacent copies are both unsaturated."""
        g = single_node_with_loops(2)
        cert = figure4_certificate(g, 0, ZeroFM())
        assert cert is not None
        lifted, v1, v2 = cert
        assert lifted.edge_at(v1, 1) is not None  # the unfolded edge joins them
        assert {v1, v2} == {(0, 0), (1, 0)}

    def test_certificate_for_degree_split_on_mixed_degrees(self):
        g = random_loopy_tree(3, 2, seed=1)
        alg = DegreeSplitFM()
        bad = unsaturated_nodes(g, alg.run_on(g))
        if bad:
            cert = figure4_certificate(g, bad[0], alg)
            assert cert is not None

    def test_no_certificate_for_correct_algorithm(self):
        g = single_node_with_loops(3)
        assert figure4_certificate(g, 0, greedy_color_algorithm()) is None

    def test_none_when_no_loop(self):
        g = cycle_graph(4)
        assert figure4_certificate(g, 0, ZeroFM()) is None


class TestSimpleUnfolding:
    def test_result_is_simple(self):
        for seed in range(3):
            g = random_loopy_tree(3, 2, seed=seed)
            lifted, alpha = simple_unfolding(g)
            assert lifted.is_simple()
            assert is_covering_map_ec(lifted, g, alpha)

    def test_size_is_power_of_two_multiple(self):
        g = single_node_with_loops(3)  # 3 loop colours
        lifted, _ = simple_unfolding(g)
        assert lifted.num_nodes() == 8  # 2**3

    def test_loop_free_input_unchanged(self):
        g = cycle_graph(5)
        lifted, alpha = simple_unfolding(g)
        assert lifted.num_nodes() == 5
        assert all(alpha[v] == v for v in lifted.nodes())


class TestLiftInvariance:
    def test_correct_algorithms_pass(self):
        rng = random.Random(1)
        g = random_loopy_tree(4, 1, seed=4)
        assert check_lift_invariance(greedy_color_algorithm(), g, rng) == []

    def test_label_cheater_caught(self):
        """An algorithm peeking at node labels is exposed by random 2-lifts."""
        from repro.local.algorithm import ECWeightAlgorithm

        class LabelCheater(ECWeightAlgorithm):
            name = "label-cheater"

            def run_on(self, g):
                return {
                    v: {
                        c: F(1, 2) if hash(repr(v)) % 2 else F(1, 3)
                        for c in g.incident_colors(v)
                    }
                    for v in g.nodes()
                }

        rng = random.Random(2)
        g = random_loopy_tree(4, 1, seed=5)
        problems = check_lift_invariance(LabelCheater(), g, rng, trials=4)
        assert problems  # caught
