"""Truncated universal covers (paper, Section 3.4).

The universal cover ``UG`` of a connected graph ``G`` is the unique tree that
is a lift of ``G``; it is infinite as soon as ``G`` has a cycle or a loop.
All arguments in the paper only ever inspect bounded-radius portions of
``UG``, so we materialise *truncated* covers: the radius-``r`` ball of ``UG``
around a chosen base node.

Cover nodes are labelled by their non-backtracking walks from the base:

* **EC-graphs** — a walk is a tuple of edge ids; traversing the same edge
  twice in a row is backtracking and forbidden (this applies to loops too: a
  loop's lift connects two distinct copies, and re-traversing it returns to
  the previous copy).
* **PO-graphs** — a walk is a tuple of ``(edge_id, direction)`` steps with
  ``direction`` +1 (tail to head) or -1 (head to tail); backtracking means
  traversing the same arc in the opposite direction.  Traversing a directed
  loop forward twice in a row is *not* backtracking (the loop behaves like a
  free-group generator ``g``: ``g . g`` is reduced while ``g . g^-1`` is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .digraph import POGraph
from .multigraph import ECGraph

Node = Hashable
Walk = Tuple  # tuple of edge ids (EC) or (edge id, direction) steps (PO)

__all__ = ["TruncatedCover", "universal_cover_ec", "TruncatedCoverPO", "universal_cover_po"]


@dataclass
class TruncatedCover:
    """The radius-``r`` ball of the universal cover of an EC-graph.

    Attributes
    ----------
    tree:
        The cover ball as a loop-free :class:`ECGraph`; node labels are the
        non-backtracking walks (tuples of base-graph edge ids) from the root.
    root:
        The empty walk ``()``.
    projection:
        The covering map restricted to the ball: walk label -> base node.
    radius:
        Truncation radius.
    """

    tree: ECGraph
    root: Walk
    projection: Dict[Walk, Node]
    radius: int


def universal_cover_ec(g: ECGraph, base: Node, radius: int) -> TruncatedCover:
    """Materialise the radius-``radius`` ball of ``UG`` around a lift of ``base``.

    Away from the truncation boundary the projection is a covering map: every
    cover node at depth < ``radius`` has exactly one incident edge per colour
    incident to its base image (degrees are preserved; loops of the base lift
    to ordinary edges between distinct copies, mirroring Figure 4).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    tree = ECGraph()
    root: Walk = ()
    tree.add_node(root)
    projection: Dict[Walk, Node] = {root: base}
    frontier: List[Walk] = [root]
    for _ in range(radius):
        nxt: List[Walk] = []
        for w in frontier:
            at = projection[w]
            last_eid = w[-1] if w else None
            for e in g.incident_edges(at):
                if e.eid == last_eid:
                    continue  # non-backtracking
                child: Walk = w + (e.eid,)
                tree.add_node(child)
                projection[child] = e.other(at)
                tree.add_edge(w, child, e.color)
                nxt.append(child)
        frontier = nxt
    return TruncatedCover(tree=tree, root=root, projection=projection, radius=radius)


@dataclass
class TruncatedCoverPO:
    """The radius-``r`` ball of the universal cover of a PO-graph.

    Node labels are reduced step words: tuples of ``(edge_id, direction)``.
    The cover is itself a :class:`POGraph` (a tree of arcs, no loops).
    """

    tree: POGraph
    root: Walk
    projection: Dict[Walk, Node]
    radius: int


def universal_cover_po(g: POGraph, base: Node, radius: int) -> TruncatedCoverPO:
    """Radius-``radius`` ball of the universal cover of a PO-graph.

    Each cover node at depth < ``radius`` has one outgoing arc per outgoing
    colour of its base image and one incoming arc per incoming colour; a
    directed loop of the base lifts to an infinite directed line through its
    copies.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    tree = POGraph()
    root: Walk = ()
    tree.add_node(root)
    projection: Dict[Walk, Node] = {root: base}
    frontier: List[Walk] = [root]
    for _ in range(radius):
        nxt: List[Walk] = []
        for w in frontier:
            at = projection[w]
            last = w[-1] if w else None
            for e in g.out_edges(at):
                step = (e.eid, +1)
                if last == (e.eid, -1):
                    continue  # backtracking
                child: Walk = w + (step,)
                tree.add_node(child)
                projection[child] = e.head
                tree.add_edge(w, child, e.color)
                nxt.append(child)
            for e in g.in_edges(at):
                step = (e.eid, -1)
                if last == (e.eid, +1):
                    continue  # backtracking
                child = w + (step,)
                tree.add_node(child)
                projection[child] = e.tail
                tree.add_edge(child, w, e.color)
                nxt.append(child)
        frontier = nxt
    return TruncatedCoverPO(tree=tree, root=root, projection=projection, radius=radius)
