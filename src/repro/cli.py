"""Command-line interface: run the paper's machinery from a shell.

Subcommands (``python -m repro <subcommand> --help`` for details):

* ``solve``     — run a distributed maximal-FM algorithm on a graph family
                  and verify the output;
* ``adversary`` — run the Section 4 unfold-and-mix construction against an
                  algorithm and print the witness ladder;
* ``refute``    — test a claim "algorithm X finishes in t rounds on
                  degree-Delta graphs";
* ``cover``     — extract the 2-approximate vertex cover from a maximal FM;
* ``order``     — print a ball of the 2d-regular PO-tree sorted by the
                  Appendix A homogeneous order;
* ``lint``      — run the model-contract static analyzer (``repro.lint``)
                  over source trees, or demo the runtime locality sanitizer;
* ``trace``     — run a workload under the ``repro.obs`` tracer and print
                  the span tree (optionally dump JSON/JSONL traces and a
                  hottest-spans profile).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.adversary import run_adversary
from .core.canonical_order import reduce_word, tree_sort_key
from .core.theorem import refute
from .core.witness import AlgorithmFailure
from .graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    star_graph,
)
from .matching.fm import fm_from_node_outputs
from .matching.greedy_color import greedy_color_algorithm
from .matching.naive import DegreeSplitFM, ZeroFM
from .matching.proposal import proposal_algorithm
from .matching.verify import verify_distributed
from .matching.vertex_cover import is_vertex_cover, vertex_cover_quality

__all__ = ["main", "build_parser"]

ALGORITHMS = {
    "greedy": greedy_color_algorithm,
    "proposal": proposal_algorithm,
    "zero": ZeroFM,
    "degree-split": DegreeSplitFM,
}


def _make_graph(family: str, n: int, delta: int, seed: int):
    factories = {
        "path": lambda: path_graph(n),
        "cycle": lambda: cycle_graph(n),
        "star": lambda: star_graph(delta),
        "complete": lambda: complete_graph(n),
        "caterpillar": lambda: caterpillar(max(n // 3, 1), max(delta - 2, 1)),
        "random": lambda: random_bounded_degree_graph(n, delta, seed),
        "regular": lambda: random_regular_graph(n if (n * delta) % 2 == 0 else n + 1, delta, seed),
        "loopy-tree": lambda: random_loopy_tree(n, max(delta - 1, 1), seed),
    }
    if family not in factories:
        raise SystemExit(f"unknown family {family!r}; choose from {sorted(factories)}")
    return factories[family]()


def _make_algorithm(name: str):
    if name not in ALGORITHMS:
        raise SystemExit(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]()


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and ``--help`` generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Linear-in-Delta lower bounds in the LOCAL model, executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run a maximal-FM algorithm on a graph family")
    solve.add_argument("--family", default="random")
    solve.add_argument("--n", type=int, default=20)
    solve.add_argument("--delta", type=int, default=4)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--algorithm", default="greedy")

    adv = sub.add_parser("adversary", help="run the Section 4 lower-bound construction")
    adv.add_argument("--delta", type=int, default=5)
    adv.add_argument("--algorithm", default="greedy")
    adv.add_argument("--deep-verify", action="store_true")

    ref = sub.add_parser("refute", help="test a claimed round count")
    ref.add_argument("--delta", type=int, default=5)
    ref.add_argument("--algorithm", default="greedy")
    ref.add_argument("--claimed-rounds", type=int, required=True)

    cov = sub.add_parser("cover", help="2-approximate vertex cover from a maximal FM")
    cov.add_argument("--family", default="random")
    cov.add_argument("--n", type=int, default=20)
    cov.add_argument("--delta", type=int, default=4)
    cov.add_argument("--seed", type=int, default=0)
    cov.add_argument("--algorithm", default="greedy")

    order = sub.add_parser("order", help="print a T-ball in the Appendix A order")
    order.add_argument("--generators", type=int, default=2)
    order.add_argument("--radius", type=int, default=2)

    ex = sub.add_parser(
        "exhaustive",
        help="prove 1-round impossibility by enumerating all grid-valued algorithms",
    )
    ex.add_argument("--delta", type=int, default=3)
    ex.add_argument("--grid-denominator", type=int, default=6)

    lint = sub.add_parser(
        "lint",
        help="model-contract static analysis (locality, determinism, "
        "exact arithmetic, frozen views)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable report")
    lint.add_argument(
        "--sanitize-demo",
        action="store_true",
        help="run the runtime locality sanitizer against a cheating and an "
        "honest EC algorithm instead of linting",
    )

    trace = sub.add_parser(
        "trace",
        help="run a workload under the repro.obs tracer and print the span tree",
    )
    trace.add_argument(
        "target",
        choices=["demo", "adversary", "theorem"],
        help="demo: one simulator run + distributed verification; "
        "adversary: the Section 4 construction; "
        "theorem: the EC<=PO chain fed to the adversary (Section 5)",
    )
    trace.add_argument("--delta", type=int, default=5)
    trace.add_argument("--algorithm", default="greedy")
    trace.add_argument(
        "--chain",
        choices=["po", "oi", "id"],
        default="po",
        help="how deep a Section 5 chain the theorem target builds "
        "(po: EC<=PO; oi: EC<=PO<=OI; id: the full EC<=PO<=OI<=ID; "
        "deeper chains are much slower)",
    )
    trace.add_argument("--json", metavar="PATH", help="write the JSON trace document")
    trace.add_argument("--jsonl", metavar="PATH", help="write a flat JSONL span log")
    trace.add_argument(
        "--profile", action="store_true", help="also print the hottest spans"
    )
    trace.add_argument(
        "--top", type=int, default=10, help="profile rows to print (default 10)"
    )
    trace.add_argument(
        "--max-depth",
        type=int,
        default=3,
        help="span-tree print depth (the JSON export is always complete)",
    )

    return parser


def _cmd_solve(args) -> int:
    g = _make_graph(args.family, args.n, args.delta, args.seed)
    alg = _make_algorithm(args.algorithm)
    outputs = alg.run_on(g)
    fm = fm_from_node_outputs(g, outputs)
    ok, _, check_rounds = verify_distributed(g, outputs)
    print(f"graph: {args.family} (n={g.num_nodes()}, m={g.num_edges()}, Delta={g.max_degree()})")
    print(f"algorithm: {alg.name} ({alg.rounds_used(g)} rounds)")
    print(f"feasible: {fm.is_feasible()}  maximal: {fm.is_maximal()}  "
          f"total weight: {fm.total_weight()}")
    print(f"1-round distributed verifier: {'accepts' if ok else 'REJECTS'} "
          f"(rounds={check_rounds})")
    return 0 if (fm.is_feasible() and fm.is_maximal()) else 1


def _cmd_adversary(args) -> int:
    alg = _make_algorithm(args.algorithm)
    try:
        witness = run_adversary(alg, args.delta, deep_verify=args.deep_verify)
    except AlgorithmFailure as failure:
        print(f"algorithm {alg.name!r} caught as incorrect: {failure}")
        return 1
    for step in witness.steps:
        print(
            f"step {step.index} [{step.side:>4}]  |G|={step.graph_g.num_nodes():>3} "
            f"|H|={step.graph_h.num_nodes():>3}  colour {step.color!r}: "
            f"{step.weight_g} vs {step.weight_h}  "
            f"(iso={step.balls_isomorphic}, loops>={step.loop_budget})"
        )
    print(witness.conclusion())
    return 0


def _cmd_refute(args) -> int:
    alg = _make_algorithm(args.algorithm)
    result = refute(alg, args.claimed_rounds, args.delta)
    print(result.summary())
    return 0 if result.kind != "consistent" else 2


def _cmd_cover(args) -> int:
    g = _make_graph(args.family, args.n, args.delta, args.seed)
    alg = _make_algorithm(args.algorithm)
    fm = fm_from_node_outputs(g, alg.run_on(g))
    cover, ratio, lower = vertex_cover_quality(fm)
    assert is_vertex_cover(g, cover)
    print(f"graph: {args.family} (n={g.num_nodes()}, m={g.num_edges()})")
    print(f"vertex cover size: {len(cover)}  LP lower bound: {lower:.2f}  "
          f"certified ratio: {ratio:.3f} (guarantee: 2)")
    return 0


def _cmd_exhaustive(args) -> int:
    from .core.exhaustive import half_integral_grid, one_round_universe, search_view_function

    universe = one_round_universe(args.delta)
    outcome = search_view_function(
        universe, t=1, grid=half_integral_grid(args.grid_denominator)
    )
    print(
        f"universe: {len(universe)} graphs of max degree {args.delta}; "
        f"{outcome.views} distinct radius-1 views; "
        f"{outcome.candidates_total} candidate outputs"
    )
    if outcome.impossible:
        print(
            f"IMPOSSIBLE: no 1-round algorithm over the 1/{args.grid_denominator} grid "
            f"exists ({outcome.nodes_explored} search nodes explored)"
        )
        return 0
    print("a satisfying view function exists on this universe:")
    for view, weights in outcome.function.items():
        print(f"  view {view!r} -> { {c: str(w) for c, w in weights.items()} }")
    return 2


def _sanitize_demo() -> int:
    """Show the locality sanitizer catching a cheat and passing an honest run."""
    from .graphs.families import path_graph
    from .local.context import NodeContext
    from .local.runtime import ECNetwork, run
    from .local.sanitize import LocalityViolation
    from .matching.proposal import ProposalFM

    class CheatingFM(ProposalFM):
        """Proposal dynamics, except it peeks at the node label."""

        def initial_state(self, ctx: NodeContext):
            state = super().initial_state(ctx)
            state["who_am_i"] = ctx.node  # the out-of-model read  # repro: noqa[locality]
            return state

    g = path_graph(5)
    try:
        run(ECNetwork(g), CheatingFM("EC"), sanitize=True)
    except LocalityViolation as violation:
        print(f"cheating algorithm caught: {violation}")
        caught = True
    else:
        print("ERROR: the cheating algorithm was not caught")
        caught = False

    result = run(ECNetwork(g), ProposalFM("EC"), sanitize=True)
    log = result.access_log
    reads = ", ".join(f"{attr}={n}" for attr, n in sorted(log.reads.items()))
    print(f"honest algorithm clean: {log.clean} (model {log.model}; reads: {reads})")
    return 0 if caught and log.clean else 1


def _cmd_lint(args) -> int:
    from .lint import lint_paths, render_json, render_text

    if args.sanitize_demo:
        return _sanitize_demo()
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths)
    print(render_json(findings) if args.json else render_text(findings))
    return 1 if findings else 0


def _cmd_trace(args) -> int:
    from .obs import (
        Tracer,
        count_spans,
        profile_rows,
        render_profile,
        render_tree,
        use_tracer,
        write_json,
        write_jsonl,
    )

    tracer = Tracer()
    with use_tracer(tracer):
        if args.target == "demo":
            g = _make_graph("random", 20, args.delta, seed=0)
            alg = _make_algorithm(args.algorithm)
            with tracer.span("trace.demo", family="random", delta=args.delta):
                outputs = alg.run_on(g)
                ok, _, _ = verify_distributed(g, outputs)
            print(f"demo: {alg.name} on random(n=20, delta={args.delta}); verifier "
                  f"{'accepts' if ok else 'REJECTS'}")
        elif args.target == "adversary":
            alg = _make_algorithm(args.algorithm)
            try:
                witness = run_adversary(alg, args.delta, tracer=tracer)
            except AlgorithmFailure as failure:
                print(f"algorithm {alg.name!r} caught as incorrect: {failure}")
            else:
                print(witness.conclusion())
        else:  # theorem: the Section 5 chain in front of the adversary
            from .core.sim_po_oi import SymmetricOIAdapter
            from .core.theorem import chain_id_to_ec, chain_oi_to_ec, chain_po_to_ec
            from .local.algorithm import SimulatedPOWeights
            from .matching.proposal import ProposalFM

            if args.chain == "po":
                ec = chain_po_to_ec(SimulatedPOWeights(ProposalFM("PO")))
            elif args.chain == "oi":
                ec = chain_oi_to_ec(SymmetricOIAdapter(ProposalFM("PO"), t=args.delta))
            else:
                ec = chain_id_to_ec(
                    ProposalFM("ID"),
                    t=args.delta,
                    id_pool=lambda n: [1000 + 7 * i for i in range(n)],
                )
            result = refute(ec, claimed_rounds=1, delta=args.delta, tracer=tracer)
            print(result.summary())

    steps = count_spans(tracer, "adversary.step")
    total = sum(1 for _ in tracer.iter_spans())
    print(f"\ntrace: {total} spans ({steps} adversary steps)")
    print(render_tree(tracer, max_depth=args.max_depth))
    if args.profile:
        print("\nhottest spans (by self time):")
        print(render_profile(profile_rows(tracer), top=args.top))
    if args.json:
        path = write_json(tracer, args.json, command=f"trace {args.target}")
        print(f"\nwrote JSON trace to {path}")
    if args.jsonl:
        path = write_jsonl(tracer, args.jsonl)
        print(f"wrote JSONL span log to {path}")
    return 0


def _cmd_order(args) -> int:
    steps = [(c, s) for c in range(1, args.generators + 1) for s in (+1, -1)]
    words = {()}
    frontier = {()}
    for _ in range(args.radius):
        nxt = set()
        for w in frontier:
            for step in steps:
                r = reduce_word(w + (step,))
                if len(r) == len(w) + 1:
                    nxt.add(r)
        words |= nxt
        frontier = nxt

    def pretty(word):
        if not word:
            return "e"
        return ".".join(f"g{c}" if s > 0 else f"g{c}~" for (c, s) in word)

    for i, w in enumerate(sorted(words, key=tree_sort_key)):
        print(f"{i:>4}: {pretty(w)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "adversary": _cmd_adversary,
        "refute": _cmd_refute,
        "cover": _cmd_cover,
        "order": _cmd_order,
        "exhaustive": _cmd_exhaustive,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
