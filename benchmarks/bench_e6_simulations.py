"""E6 — Sections 5.1-5.3 (Figures 8-9): the EC <= PO <= OI simulations.

Paper claim: the simulations preserve run time (up to constants) and
correctness.  Measured: the chained algorithms still emit verified maximal
FMs; the EC <= PO link adds zero rounds; PO <= OI reports exactly its ``t``.
"""

from __future__ import annotations

import pytest

from repro.core.sim_ec_po import ECFromPO
from repro.core.sim_po_oi import POFromOI, SymmetricOIAdapter
from repro.graphs.families import cycle_graph, random_regular_graph, single_node_with_loops
from repro.local.algorithm import SimulatedPOWeights
from repro.matching.fm import fm_from_node_outputs
from repro.matching.proposal import ProposalFM


@pytest.mark.parametrize("n", [6, 10, 16])
def test_ec_from_po_round_preservation(benchmark, record, n):
    g = cycle_graph(n)
    po = SimulatedPOWeights(ProposalFM("PO"), name="proposal-po")
    ec = ECFromPO(po)
    outputs = benchmark.pedantic(lambda: ec.run_on(g), rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_maximal()
    record(
        "E6 EC <= PO (Section 5.1, Figure 8)",
        graph=f"C{n}",
        po_rounds=ec.rounds_used(g),
        overhead_rounds=0,
        maximal=fm.is_maximal(),
    )


@pytest.mark.parametrize("t", [2, 3, 4])
def test_po_from_oi_reports_t(benchmark, record, t):
    g = cycle_graph(6)
    from repro.graphs.ports import po_double_from_ec

    d = po_double_from_ec(g)
    oi = SymmetricOIAdapter(ProposalFM("PO"), t=t)
    po = POFromOI(oi)
    benchmark.pedantic(lambda: po.run_on(d), rounds=1, iterations=1)
    record(
        "E6 PO <= OI run-time preservation (Section 5.3, Figure 9)",
        t=t,
        reported_rounds=po.rounds_used(d),
        preserved=po.rounds_used(d) == t,
    )


@pytest.mark.parametrize("family,graph", [
    ("C8", None),
    ("3-regular n=8", None),
    ("1 node 3 loops", None),
])
def test_full_oi_chain_correct(benchmark, record, family, graph):
    graphs = {
        "C8": cycle_graph(8),
        "3-regular n=8": random_regular_graph(8, 3, seed=1),
        "1 node 3 loops": single_node_with_loops(3),
    }
    g = graphs[family]
    ec = ECFromPO(POFromOI(SymmetricOIAdapter(ProposalFM("PO"), t=3)))
    outputs = benchmark.pedantic(lambda: ec.run_on(g), rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_feasible() and fm.is_maximal()
    record(
        "E6 EC <= PO <= OI end-to-end correctness",
        graph=family,
        feasible=fm.is_feasible(),
        maximal=fm.is_maximal(),
        weight=str(fm.total_weight()),
    )
