"""Fractional matchings (paper, Section 1.2).

A fractional matching (FM) on a graph ``G`` assigns each edge a weight in
``[0, 1]`` such that every node's incident weight sum ``y[v]`` is at most 1;
``v`` is *saturated* when ``y[v] = 1``.  An FM is *maximal* when every edge
has at least one saturated endpoint.  All weights here are exact
:class:`fractions.Fraction` values so that feasibility, saturation and the
propagation arguments of the lower bound are decided without tolerances.

Degree conventions for multigraphs follow the paper (Section 3.5): on an
EC-graph a loop contributes its weight **once** to ``y[v]``; on a PO-graph a
directed loop contributes **twice** (once as tail, once as head).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs.digraph import POGraph
from ..graphs.multigraph import ECGraph

Node = Hashable
Color = Hashable
EdgeId = int

__all__ = [
    "FractionalMatching",
    "InconsistentOutputError",
    "fm_from_node_outputs",
    "po_node_load",
]

ZERO = Fraction(0)
ONE = Fraction(1)


class InconsistentOutputError(ValueError):
    """Raised when the two endpoints of an edge announce different weights.

    In the LOCAL formulation each node outputs the weight of every incident
    edge (Section 1.4); a correct algorithm must make endpoints agree, and a
    disagreement is a hard correctness failure the verifiers report.
    """


@dataclass
class FractionalMatching:
    """An edge-weight assignment on an EC-graph, with exact arithmetic.

    Missing edges weigh 0.  The class is a value object: it never mutates its
    graph, and all predicates recompute from the stored weights.
    """

    graph: ECGraph
    weights: Dict[EdgeId, Fraction]

    def __post_init__(self) -> None:
        clean: Dict[EdgeId, Fraction] = {}
        for eid, w in self.weights.items():
            if not self.graph.has_edge_id(eid):
                raise KeyError(f"weight given for unknown edge id {eid}")
            clean[eid] = w if type(w) is Fraction else Fraction(w)
        self.weights = clean

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def weight(self, eid: EdgeId) -> Fraction:
        """Weight of edge ``eid`` (0 when unset)."""
        return self.weights.get(eid, ZERO)

    def node_load(self, v: Node) -> Fraction:
        """``y[v]``: the sum of incident edge weights (loops count once).

        Sums over the node's slot ids (:meth:`ECGraph.incident_edge_ids`)
        without sorting or fetching edge records — Fraction addition is
        exact, so the order of the incident edges is irrelevant.
        """
        weights = self.weights
        return sum(
            (weights.get(eid, ZERO) for eid in self.graph.incident_edge_ids(v)), ZERO
        )

    def is_saturated(self, v: Node) -> bool:
        """Whether ``y[v] = 1`` exactly."""
        return self.node_load(v) == ONE

    def saturated_nodes(self) -> List[Node]:
        """All saturated nodes."""
        return [v for v in self.graph.nodes() if self.is_saturated(v)]

    def total_weight(self) -> Fraction:
        """The FM's total weight ``sum_e y(e)``."""
        # __post_init__ guarantees every stored key is a live edge, and
        # missing edges weigh 0, so the stored weights alone carry the sum
        return sum(self.weights.values(), ZERO)

    # ------------------------------------------------------------------
    # feasibility / maximality
    # ------------------------------------------------------------------
    def feasibility_violations(self) -> List[str]:
        """Human-readable list of feasibility violations (empty iff feasible)."""
        problems: List[str] = []
        for e in self.graph.edges():
            w = self.weight(e.eid)
            if not (ZERO <= w <= ONE):
                problems.append(f"edge {e.eid} has weight {w} outside [0, 1]")
        for v in self.graph.nodes():
            load = self.node_load(v)
            if load > ONE:
                problems.append(f"node {v!r} is overloaded: y[v] = {load}")
        return problems

    def is_feasible(self) -> bool:
        """Whether all weights lie in [0, 1] and no node is overloaded."""
        return not self.feasibility_violations()

    def maximality_violations(self) -> List[EdgeId]:
        """Edges with *no* saturated endpoint (empty iff maximal).

        For a loop the single endpoint must be saturated.
        """
        saturated = {v for v in self.graph.nodes() if self.is_saturated(v)}
        return [
            e.eid
            for e in self.graph.edges()
            if e.u not in saturated and e.v not in saturated
        ]

    def is_maximal(self) -> bool:
        """Whether every edge has at least one saturated endpoint."""
        return not self.maximality_violations()

    def is_fully_saturated(self) -> bool:
        """Whether *every* node is saturated (Lemma 2's conclusion on loopy graphs)."""
        return all(self.is_saturated(v) for v in self.graph.nodes())

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def disagreements(self, other: "FractionalMatching") -> List[EdgeId]:
        """Edge ids on which two FMs over the same edge-id space differ."""
        ids = set(self.weights) | set(other.weights)
        return sorted(eid for eid in ids if self.weight(eid) != other.weight(eid))

    def restricted_to(self, nodes) -> Dict[EdgeId, Fraction]:
        """Weights of edges with at least one endpoint in ``nodes``."""
        keep = set(nodes)
        out: Dict[EdgeId, Fraction] = {}
        for e in self.graph.edges():
            if e.u in keep or e.v in keep:
                out[e.eid] = self.weight(e.eid)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FractionalMatching(total={self.total_weight()}, "
            f"saturated={len(self.saturated_nodes())}/{self.graph.num_nodes()}, "
            f"maximal={self.is_maximal()})"
        )


def fm_from_node_outputs(
    g: ECGraph, outputs: Mapping[Node, Mapping[Color, Fraction]]
) -> FractionalMatching:
    """Assemble an FM from per-node, per-colour local outputs.

    Every node must announce a weight for each of its incident colours, and
    the two endpoints of every non-loop edge must agree; otherwise
    :class:`InconsistentOutputError` is raised (this is itself a locally
    checkable condition).
    """
    weights: Dict[EdgeId, Fraction] = {}
    for v in g.nodes():
        out = outputs.get(v)
        if out is None:
            raise InconsistentOutputError(f"node {v!r} produced no output")
        expected = set(map(repr, g.incident_colors(v)))
        got = set(map(repr, out.keys()))
        if expected != got:
            raise InconsistentOutputError(
                f"node {v!r} announced colours {sorted(got)} but has {sorted(expected)}"
            )
        for color, w in out.items():
            e = g.edge_at(v, color)
            if type(w) is not Fraction:
                w = Fraction(w)
            if e.eid in weights and weights[e.eid] != w:
                raise InconsistentOutputError(
                    f"endpoints of edge {e.eid} disagree: {weights[e.eid]} vs {w}"
                )
            weights[e.eid] = w
    return FractionalMatching(graph=g, weights=weights)


def po_node_load(g: POGraph, weights: Mapping[EdgeId, Fraction], v: Node) -> Fraction:
    """``y[v]`` on a PO-graph: out-arcs + in-arcs; a directed loop counts twice."""
    load = ZERO
    for e in g.out_edges(v):
        w = weights.get(e.eid, ZERO)
        load += w if type(w) is Fraction else Fraction(w)
    for e in g.in_edges(v):
        w = weights.get(e.eid, ZERO)
        load += w if type(w) is Fraction else Fraction(w)
    return load
